//! Table 9: HawkEye-PMU vs HawkEye-G on co-running workload pairs.
//!
//! Each set pairs one TLB-sensitive and one TLB-insensitive workload,
//! both with *high access-coverage* — so HawkEye-G's estimate cannot tell
//! them apart, while HawkEye-PMU's measured overheads can. The paper
//! reports random(4GB) 1.77× under PMU vs 1.41× under G, and cg.D 1.62×
//! vs 1.35× (PMU up to 36 % better).

use hawkeye_bench::{secs, spd, PolicyKind};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::{Cycles, TextTable};
use hawkeye_workloads::{NpbKernel, PatternScan};

fn set(name: &str) -> Vec<(&'static str, Box<dyn Workload>)> {
    match name {
        "set1" => vec![
            ("random(192MB)", Box::new(PatternScan::random(48 * 1024, 6_000_000, 60)) as Box<dyn Workload>),
            ("sequential(192MB)", Box::new(PatternScan::sequential(48 * 1024, 6_000_000, 60))),
        ],
        _ => vec![
            ("cg.D(128MB)", Box::new(NpbKernel::cg(64, 5000)) as Box<dyn Workload>),
            ("mg.D(192MB)", Box::new(NpbKernel::mg(96, 5000))),
        ],
    }
}

fn run_set(kind: PolicyKind, which: &str) -> Vec<(String, f64, f64)> {
    let mut cfg = kind.config(640);
    cfg.max_time = Cycles::from_secs(600.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.5, 7);
    let mut pids = Vec::new();
    for (name, w) in set(which) {
        pids.push((name, sim.spawn(w)));
    }
    sim.run();
    pids.iter()
        .map(|(name, pid)| {
            let p = sim.machine().process(*pid).expect("pid");
            let t = p.finish_time().unwrap_or(sim.machine().now()).as_secs();
            let ov = sim.machine().mmu().lifetime(*pid).mmu_overhead();
            (name.to_string(), t, ov)
        })
        .collect()
}

fn main() {
    let mut t = TextTable::new(vec![
        "Workload",
        "MMU overhead (4KB)",
        "4KB (s)",
        "HawkEye-PMU (s)",
        "HawkEye-G (s)",
        "PMU speedup",
        "G speedup",
    ])
    .with_title("Table 9: HawkEye-PMU vs HawkEye-G (one sensitive + one insensitive per set)");
    for which in ["set1", "set2"] {
        let base = run_set(PolicyKind::Linux4k, which);
        let pmu = run_set(PolicyKind::HawkEyePmu, which);
        let g = run_set(PolicyKind::HawkEyeG, which);
        let mut totals = (0.0, 0.0, 0.0);
        for i in 0..base.len() {
            let (name, tb, ov) = &base[i];
            let tp = pmu[i].1;
            let tg = g[i].1;
            totals.0 += tb;
            totals.1 += tp;
            totals.2 += tg;
            t.row(vec![
                name.clone(),
                format!("{:.0}%", ov * 100.0),
                secs(*tb),
                secs(tp),
                secs(tg),
                spd(tb / tp),
                spd(tb / tg),
            ]);
        }
        t.row(vec![
            format!("{which} TOTAL"),
            "-".into(),
            secs(totals.0),
            secs(totals.1),
            secs(totals.2),
            spd(totals.0 / totals.1),
            spd(totals.0 / totals.2),
        ]);
    }
    println!("{t}");
    println!(
        "(paper, Table 9: random 1.77x PMU vs 1.41x G; cg.D 1.62x vs 1.35x;\n\
         sequential/mg unchanged — PMU correctly skips the insensitive process)"
    );
}
