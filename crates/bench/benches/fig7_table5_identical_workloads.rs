//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig7_table5_identical_workloads`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig7_table5_identical_workloads`.

fn main() {
    hawkeye_bench::suite::run_main("fig7_table5_identical_workloads");
}
