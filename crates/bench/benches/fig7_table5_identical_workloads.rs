//! Fig. 7 / Table 5: three identical instances of Graph500 and XSBench
//! running simultaneously in a fragmented system.
//!
//! Linux's FCFS khugepaged promotes one process at a time (fast for the
//! first, unfair to the rest); Ingens promotes proportionally but wastes
//! promotions on cold low-VA regions; HawkEye promotes hot regions of all
//! instances round-robin — the paper measures 1.13–1.15× average speedup
//! for HawkEye vs ~1.0–1.06× for Linux/Ingens.

use hawkeye_bench::{secs, spd, PolicyKind};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::{Cycles, TextTable};
use hawkeye_workloads::HotspotWorkload;

fn instance(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(56, 5000)),
        _ => Box::new(HotspotWorkload::xsbench(64, 5000)),
    }
}

fn run_three(kind: PolicyKind, name: &str) -> (Vec<f64>, u64) {
    let mut cfg = kind.config(768);
    cfg.max_time = Cycles::from_secs(400.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let pids: Vec<u32> = (0..3).map(|_| sim.spawn(instance(name))).collect();
    sim.run();
    let times = pids
        .iter()
        .map(|pid| {
            sim.machine()
                .process(*pid)
                .and_then(|p| p.finish_time())
                .unwrap_or(sim.machine().now())
                .as_secs()
        })
        .collect();
    (times, sim.machine().stats().promotions)
}

fn main() {
    let mut t = TextTable::new(vec![
        "Workload",
        "Policy",
        "inst-1 (s)",
        "inst-2 (s)",
        "inst-3 (s)",
        "avg (s)",
        "avg speedup",
        "promotions",
    ])
    .with_title("Table 5 / Fig. 7: three identical instances, fragmented system");
    for name in ["graph500", "xsbench"] {
        let (base, _) = run_three(PolicyKind::Linux4k, name);
        let avg4k = base.iter().sum::<f64>() / 3.0;
        for kind in [
            PolicyKind::Linux4k,
            PolicyKind::Linux2m,
            PolicyKind::Ingens,
            PolicyKind::HawkEyePmu,
            PolicyKind::HawkEyeG,
        ] {
            let (times, promos) = if kind == PolicyKind::Linux4k {
                (base.clone(), 0)
            } else {
                run_three(kind, name)
            };
            let avg = times.iter().sum::<f64>() / 3.0;
            t.row(vec![
                name.to_string(),
                kind.label().to_string(),
                secs(times[0]),
                secs(times[1]),
                secs(times[2]),
                secs(avg),
                spd(avg4k / avg),
                promos.to_string(),
            ]);
        }
    }
    println!("{t}");
    println!(
        "(paper, Table 5: Graph500 avg speedups 1.02x Linux / 1.01x Ingens /\n\
         1.14x HawkEye-PMU / 1.13x HawkEye-G; XSBench 1.00/1.00/1.15/1.15)"
    );
}
