//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fleet_slo`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fleet_slo`.

fn main() {
    hawkeye_bench::suite::run_main("fleet_slo");
}
