//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig1_redis_bloat`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig1_redis_bloat`.

fn main() {
    hawkeye_bench::suite::run_main("fig1_redis_bloat");
}
