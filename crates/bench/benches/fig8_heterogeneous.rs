//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig8_heterogeneous`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig8_heterogeneous`.

fn main() {
    hawkeye_bench::suite::run_main("fig8_heterogeneous");
}
