//! Fig. 8: a TLB-sensitive application co-running with a lightly-loaded
//! Redis server, launched in both orders.
//!
//! Linux promotes in process-launch order, so the sensitive app only wins
//! when launched first; Ingens' footprint-proportional shares favor the
//! (large, uniformly-accessed) Redis; HawkEye allocates by MMU overhead
//! and is order-independent — the paper measures 15–60 % speedups for the
//! sensitive apps under HawkEye in both orders.

use hawkeye_bench::{spd, PolicyKind};
use hawkeye_kernel::{Simulator, Workload};
use hawkeye_metrics::{Cycles, TextTable};
use hawkeye_workloads::{HotspotWorkload, NpbKernel, RedisKv};

fn sensitive(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(56, 4500)),
        "xsbench" => Box::new(HotspotWorkload::xsbench(64, 4500)),
        _ => Box::new(NpbKernel::cg(48, 4500)),
    }
}

fn redis() -> Box<dyn Workload> {
    // Lightly loaded: 96 MiB of keys, random GETs paced at a low rate.
    Box::new(RedisKv::lightly_loaded(24 * 1024, 100_000_000, 23))
}

/// Runs the pair; `sensitive_first` controls launch order. Returns the
/// sensitive app's completion time.
fn run_pair(kind: PolicyKind, name: &str, sensitive_first: bool) -> f64 {
    let mut cfg = kind.config(768);
    cfg.max_time = Cycles::from_secs(400.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let sens_pid = if sensitive_first {
        let p = sim.spawn(sensitive(name));
        sim.spawn(redis());
        p
    } else {
        sim.spawn(redis());
        sim.spawn(sensitive(name))
    };
    sim.run_while(|m| m.process(sens_pid).map(|p| !p.is_finished()).unwrap_or(false));
    sim.machine()
        .process(sens_pid)
        .and_then(|p| p.finish_time())
        .unwrap_or(sim.machine().now())
        .as_secs()
}

fn main() {
    let mut t = TextTable::new(vec![
        "Sensitive app",
        "Policy",
        "speedup (launched Before)",
        "speedup (launched After)",
    ])
    .with_title("Fig. 8: TLB-sensitive app +/- lightly-loaded Redis, both launch orders");
    for name in ["graph500", "xsbench", "cg"] {
        let base_before = run_pair(PolicyKind::Linux4k, name, true);
        let base_after = run_pair(PolicyKind::Linux4k, name, false);
        for kind in
            [PolicyKind::Linux2m, PolicyKind::Ingens, PolicyKind::HawkEyePmu, PolicyKind::HawkEyeG]
        {
            let before = run_pair(kind, name, true);
            let after = run_pair(kind, name, false);
            t.row(vec![
                name.to_string(),
                kind.label().to_string(),
                spd(base_before / before),
                spd(base_after / after),
            ]);
        }
    }
    println!("{t}");
    println!(
        "(paper, Fig. 8: Linux helps only in the Before order; Ingens favors\n\
         Redis in both; HawkEye gives the sensitive app 15-60% in both orders)"
    );
}
