//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table3_npb_characteristics`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table3_npb_characteristics`.

fn main() {
    hawkeye_bench::suite::run_main("table3_npb_characteristics");
}
