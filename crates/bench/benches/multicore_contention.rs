//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::multicore_contention`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench multicore_contention`.

fn main() {
    hawkeye_bench::suite::run_main("multicore_contention");
}
