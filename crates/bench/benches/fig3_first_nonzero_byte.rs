//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig3_first_nonzero_byte`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig3_first_nonzero_byte`.

fn main() {
    hawkeye_bench::suite::run_main("fig3_first_nonzero_byte");
}
