//! Fig. 3: average distance to the first non-zero byte in 4 KB pages.
//!
//! The paper measures 9.11 bytes on average across 56 workloads, making
//! the zero-scan of in-use pages ~400× cheaper than scanning bloat pages.
//! Here we sample each workload family's content model and print the
//! empirical means alongside the paper's suite averages.

use hawkeye_metrics::TextTable;
use hawkeye_workloads::DirtModel;

fn main() {
    // (family, configured mean, paper context)
    let families: Vec<(&str, f64)> = vec![
        ("spec-cpu2006", 11.0),
        ("parsec", 7.5),
        ("biobench", 8.0),
        ("cloudsuite", 12.0),
        ("redis", 4.0),
        ("sparsehash", 6.0),
        ("hacc-io", 3.0),
        ("graph500", 9.11),
        ("xsbench", 9.11),
        ("npb", 9.11),
    ];
    let mut t = TextTable::new(vec!["Workload family", "Mean first-non-zero byte (sampled)"])
        .with_title("Fig. 3: distance to first non-zero byte per 4 KB in-use page");
    let mut grand = 0.0;
    for (i, (name, mean)) in families.iter().enumerate() {
        let mut d = DirtModel::new(*mean, i as u64 + 1);
        let n = 100_000;
        let s: u64 = (0..n).map(|_| d.sample() as u64).sum();
        let emp = s as f64 / n as f64;
        grand += emp;
        t.row(vec![name.to_string(), format!("{emp:.2} B")]);
    }
    t.row(vec!["AVERAGE".into(), format!("{:.2} B", grand / families.len() as f64)]);
    println!("{t}");
    println!("(paper, Fig. 3: average over 56 workloads = 9.11 bytes)");
    println!(
        "scan-cost asymmetry: in-use page ~{} bytes vs bloat page 4096 bytes",
        (grand / families.len() as f64).round()
    );
}
