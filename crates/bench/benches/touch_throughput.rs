//! Simulator touch-throughput smoke: wall-clock touches/sec for the three
//! shapes the fast path targets (streaming `TouchRange`, uniform-random
//! `TouchList`, repeat-heavy single-page `Touch`).
//!
//! Plain `std::time::Instant`, no external harness. Numbers are recorded
//! in `EXPERIMENTS.md`; `scripts/ci.sh` runs this target as a smoke test
//! with `--quick`.
//!
//! Wall-clock (host-dependent) numbers go to **stderr**, keeping stdout
//! and the JSON summary deterministic like every other target. Run with
//! `HAWKEYE_BENCH_THREADS=1` for clean single-core throughput numbers —
//! co-running cases contend for the same cores.

use std::time::Instant;

use hawkeye_bench::{run_one, run_scenarios, Json, PolicyKind, Report, Row, Scenario};
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{Vpn, VmaKind};
use hawkeye_workloads::{DirtModel, PatternScan};

/// Repeat-heavy shape: hammer a small hot set with large `repeats`
/// counts, the pattern where per-touch TLB modeling is pure overhead.
#[derive(Debug)]
struct RepeatHammer {
    pages: u64,
    touches_left: u64,
    started: bool,
    cursor: u64,
    dirt: DirtModel,
}

impl RepeatHammer {
    fn new(pages: u64, touches: u64) -> Self {
        RepeatHammer {
            pages,
            touches_left: touches,
            started: false,
            cursor: 0,
            dirt: DirtModel::paper_average(11),
        }
    }
}

impl Workload for RepeatHammer {
    fn name(&self) -> &str {
        "repeat-hammer"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if !self.started {
            self.started = true;
            return Some(MemOp::Mmap { start: Vpn(0), pages: self.pages, kind: VmaKind::Anon });
        }
        if self.touches_left == 0 {
            return None;
        }
        self.touches_left -= 1;
        let vpn = Vpn(self.cursor % self.pages);
        self.cursor += 1;
        Some(MemOp::Touch { vpn, write: true, repeats: 512, think: 20 })
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

struct Case {
    name: &'static str,
    build: fn(u64) -> Box<dyn Workload>,
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale: u64 = if quick { 1 } else { 8 };

    let cases = [
        Case {
            name: "streaming",
            build: |n| Box::new(PatternScan::sequential(64 * 1024, n, 30)),
        },
        Case {
            name: "random",
            build: |n| Box::new(PatternScan::random(64 * 1024, n, 30)),
        },
        Case {
            name: "repeat-heavy",
            build: |n| Box::new(RepeatHammer::new(4 * 1024, n)),
        },
    ];

    let scenarios: Vec<Scenario<Row>> = cases
        .into_iter()
        .map(|case| {
            Scenario::new(case.name, move || {
                let n = scale * 1_000_000;
                let t0 = Instant::now();
                let out = run_one(PolicyKind::HawkEyeG, 1024, None, 1e9, (case.build)(n));
                let wall = t0.elapsed();
                let touches =
                    out.sim.machine().process(out.pid).expect("pid valid").stats().touches;
                let rate = touches as f64 / wall.as_secs_f64();
                eprintln!(
                    "[touch-throughput] {}: {touches} touches in {:.0} ms = {:.2e} touches/sec",
                    case.name,
                    wall.as_secs_f64() * 1e3,
                    rate
                );
                if quick {
                    assert!(
                        wall.as_secs_f64() < 30.0,
                        "{} smoke exceeded time budget: {:.1}s",
                        case.name,
                        wall.as_secs_f64()
                    );
                }
                Row::new(vec![case.name.to_string(), format!("{touches}")]).with_json(Json::obj(
                    vec![("shape", Json::str(case.name)), ("touches", Json::int(touches))],
                ))
            })
        })
        .collect();
    let mut report = Report::new(
        "touch_throughput",
        "Touch throughput (simulator hot path; wall-clock on stderr)",
        vec!["Shape", "Touches"],
    );
    report.extend(run_scenarios(scenarios));
    report.finish();
}
