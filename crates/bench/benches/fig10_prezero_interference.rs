//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig10_prezero_interference`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig10_prezero_interference`.

fn main() {
    hawkeye_bench::suite::run_main("fig10_prezero_interference");
}
