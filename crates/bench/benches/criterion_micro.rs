//! Criterion micro-benchmarks of the performance-critical simulator
//! components: buddy alloc/free, TLB lookups, page-table translation,
//! access-map updates and the pre-zeroing step.

use criterion::{criterion_group, criterion_main, Criterion};
use hawkeye_core::AccessMap;
use hawkeye_mem::{AllocPref, Order, PhysMemory, HUGE_ORDER};
use hawkeye_tlb::{Mmu, TlbConfig};
use hawkeye_vm::{Hvpn, PageSize, PageTable, Vpn};
use std::hint::black_box;

fn bench_buddy(c: &mut Criterion) {
    c.bench_function("buddy_alloc_free_order0", |b| {
        let mut pm = PhysMemory::new(64 * 1024);
        b.iter(|| {
            let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
            pm.free(black_box(a.pfn), Order(0));
        });
    });
    c.bench_function("buddy_alloc_free_huge", |b| {
        let mut pm = PhysMemory::new(64 * 1024);
        b.iter(|| {
            let a = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
            pm.free(black_box(a.pfn), HUGE_ORDER);
        });
    });
    c.bench_function("prezero_step_1k", |b| {
        let mut pm = PhysMemory::new(64 * 1024);
        b.iter(|| {
            // Steady-state: zero a bounded batch (no-op when clean).
            black_box(pm.prezero_step(1024));
        });
    });
}

fn bench_tlb(c: &mut Criterion) {
    c.bench_function("mmu_access_hit", |b| {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        mmu.access(1, Vpn(7), PageSize::Base, false);
        b.iter(|| black_box(mmu.access(1, Vpn(7), PageSize::Base, false)));
    });
    c.bench_function("mmu_access_miss_stream", |b| {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 4096) % (1 << 24);
            black_box(mmu.access(1, Vpn(i), PageSize::Base, false))
        });
    });
}

fn bench_page_table(c: &mut Criterion) {
    c.bench_function("page_table_translate", |b| {
        let mut pt = PageTable::new();
        for i in 0..4096u64 {
            pt.map_base(Vpn(i), hawkeye_mem::Pfn(i), false).unwrap();
        }
        let mut i = 0;
        b.iter(|| {
            i = (i + 1) % 4096;
            black_box(pt.translate(Vpn(i)))
        });
    });
    c.bench_function("page_table_access_sample_region", |b| {
        let mut pt = PageTable::new();
        for i in 0..512u64 {
            pt.map_base(Vpn(i), hawkeye_mem::Pfn(i), false).unwrap();
        }
        b.iter(|| black_box(pt.sample_and_clear_access(Hvpn(0))));
    });
}

fn bench_access_map(c: &mut Criterion) {
    c.bench_function("access_map_update", |b| {
        let mut m = AccessMap::new(0.4);
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 1) % 1024;
            m.update(Hvpn(i), ((i * 37) % 512) as u32);
        });
    });
}

criterion_group!(
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_millis(600)).warm_up_time(std::time::Duration::from_millis(200));
    targets = bench_buddy, bench_tlb, bench_page_table, bench_access_map
);
criterion_main!(benches);
