//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig4_access_map`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig4_access_map`.

fn main() {
    hawkeye_bench::suite::run_main("fig4_access_map");
}
