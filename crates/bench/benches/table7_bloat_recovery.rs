//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table7_bloat_recovery`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table7_bloat_recovery`.

fn main() {
    hawkeye_bench::suite::run_main("table7_bloat_recovery");
}
