//! Table 8: fault-bound workloads under async pre-zeroing.
//!
//! All five workloads are dominated by page-fault handling; all free
//! memory starts *dirty* (steady state), so synchronous zeroing is on the
//! fault path unless a pre-zeroing daemon removed it. Paper: HawkEye-2MB
//! boots a KVM guest 13.8× faster than Linux-2MB's sync-zeroing path and
//! improves Redis 2 MB-value throughput 1.26×; Ingens' utilization
//! threshold *hurts* these workloads by multiplying faults.

use hawkeye_bench::{dirty_free_memory, secs, PolicyKind, RunOutcome};
use hawkeye_kernel::{workload::script, MemOp, Simulator, Workload};
use hawkeye_metrics::{Cycles, TextTable};
use hawkeye_workloads::{HaccIo, RedisKv, RedisOp, SparseHash, Spinup};

fn run_steady(kind: PolicyKind, mib: u64, w: Box<dyn Workload>) -> RunOutcome {
    let mut cfg = kind.config(mib);
    cfg.max_time = Cycles::from_secs(600.0);
    let mut sim = Simulator::new(cfg, kind.build());
    dirty_free_memory(sim.machine_mut());
    if kind.wants_zero_pool() {
        sim.spawn(script("warmup", vec![MemOp::Compute { cycles: 3_000_000_000 }]));
        sim.run();
    }
    let pid = sim.spawn(w);
    sim.run();
    RunOutcome { sim, pid }
}

type WorkloadCtor = fn() -> Box<dyn Workload>;

fn workloads() -> Vec<(&'static str, WorkloadCtor)> {
    vec![
        ("Redis 2MB-values (Kops/s)", || {
            Box::new(RedisKv::new(
                80 * 1024,
                vec![RedisOp::Insert { keys: 120, value_pages: 512, think: 500 }],
                41,
            ))
        }),
        ("SparseHash (s)", || Box::new(SparseHash::new(2048, 5, 60))),
        ("HACC-IO (s)", || Box::new(HaccIo::new(24 * 1024, 3))),
        ("JVM spin-up (s)", || Box::new(Spinup::new("jvm", 24 * 1024))),
        ("KVM spin-up (s)", || Box::new(Spinup::new("kvm", 24 * 1024))),
    ]
}

fn main() {
    let kinds = [
        PolicyKind::Linux4k,
        PolicyKind::Linux2m,
        PolicyKind::Ingens90,
        PolicyKind::HawkEye4k,
        PolicyKind::HawkEyeG,
    ];
    let mut header: Vec<String> = vec!["Workload".into()];
    header.extend(kinds.iter().map(|k| k.label().to_string()));
    let mut t = TextTable::new(header)
        .with_title("Table 8: fault-dominated workloads, steady-state (dirty) free memory");
    for (name, mk) in workloads() {
        let mut row = vec![name.to_string()];
        for kind in kinds {
            let out = run_steady(kind, 512, mk());
            if name.starts_with("Redis") {
                // Throughput: inserted keys per second of CPU time.
                let kops = 120.0 / out.cpu_secs().max(1e-9) / 1e3;
                row.push(format!("{:.2}K", kops * 1e3 / 1e3));
            } else {
                row.push(secs(out.cpu_secs()));
            }
        }
        t.row(row);
    }
    println!("{t}");
    println!(
        "(paper, Table 8 [45GB/36GB/6GB/36GB/36GB footprints]:\n\
         Redis 233/437/192/236/551 Kops; SparseHash 50.1/17.2/51.5/46.6/10.6 s;\n\
         HACC-IO 6.5/4.5/6.6/6.5/4.2 s; JVM 37.7/18.6/52.7/29.8/1.37 s;\n\
         KVM 40.6/9.7/41.8/30.2/0.70 s)"
    );
}
