//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table8_fast_faults`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table8_fast_faults`.

fn main() {
    hawkeye_bench::suite::run_main("table8_fast_faults");
}
