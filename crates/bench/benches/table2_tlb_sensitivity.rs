//! Table 2: number of TLB-sensitive applications per benchmark suite.
//!
//! Each of the 79 census profiles runs once with base pages only and once
//! with Linux THP on pristine memory; an application is TLB-sensitive if
//! huge pages speed it up by more than 3 %. The paper counts 15/79.

use hawkeye_bench::{run_one, PolicyKind};
use hawkeye_metrics::TextTable;
use hawkeye_workloads::census;
use std::collections::BTreeMap;

fn main() {
    let iters = 120;
    let mut per_suite: BTreeMap<&str, (u32, u32, u32)> = BTreeMap::new(); // total, sensitive, expected
    let mut mismatches = Vec::new();
    for app in census() {
        let base = run_one(PolicyKind::Linux4k, 512, None, 120.0, Box::new(app.workload(iters)));
        let huge = run_one(PolicyKind::Linux2m, 512, None, 120.0, Box::new(app.workload(iters)));
        // Steady-state comparison: the paper's applications run for
        // minutes, so demand-paging warmup is negligible there; exclude
        // fault-handler time to match.
        let steady = |o: &hawkeye_bench::RunOutcome| (o.cpu_secs() - o.fault_secs()).max(1e-9);
        let speedup = steady(&base) / steady(&huge);
        let sensitive = speedup > 1.03;
        let e = per_suite.entry(app.suite).or_default();
        e.0 += 1;
        e.1 += sensitive as u32;
        e.2 += app.expected_sensitive as u32;
        if sensitive != app.expected_sensitive {
            mismatches.push(format!("{} ({:.2}x)", app.name, speedup));
        }
    }
    let mut t = TextTable::new(vec!["Suite", "Total", "TLB-sensitive (measured)", "Paper"])
        .with_title("Table 2: TLB-sensitive applications per suite (>3% huge-page speedup)");
    let mut total = (0, 0, 0);
    for (suite, (n, s, e)) in &per_suite {
        t.row(vec![suite.to_string(), n.to_string(), s.to_string(), e.to_string()]);
        total.0 += n;
        total.1 += s;
        total.2 += e;
    }
    t.row(vec!["TOTAL".into(), total.0.to_string(), total.1.to_string(), total.2.to_string()]);
    println!("{t}");
    if mismatches.is_empty() {
        println!("classification matches the paper for all 79 applications");
    } else {
        println!("classification differs from the paper for: {}", mismatches.join(", "));
    }
}
