//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table2_tlb_sensitivity`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table2_tlb_sensitivity`.

fn main() {
    hawkeye_bench::suite::run_main("table2_tlb_sensitivity");
}
