//! Fig. 5: performance speedup from huge-page promotion after
//! fragmentation, and execution time saved per promotion.
//!
//! Workloads allocate everything in a fragmented system; policies then
//! recover from high MMU overheads by promoting. HawkEye's
//! access-coverage order reaches the hot (high-VA) regions immediately;
//! Linux and Ingens scan sequentially from low VAs. Paper: HawkEye up to
//! 22 % over never-promoting, 6.7× (G) / 44× (PMU) better time saved per
//! promotion than Linux on XSBench.

use hawkeye_bench::{run_one, secs, spd, PolicyKind};
use hawkeye_kernel::Workload;
use hawkeye_metrics::TextTable;
use hawkeye_workloads::{HotspotWorkload, NpbKernel};

fn workload(name: &str) -> Box<dyn Workload> {
    match name {
        "graph500" => Box::new(HotspotWorkload::graph500(96, 6000)),
        "xsbench" => Box::new(HotspotWorkload::xsbench(120, 6000)),
        "cg.D" => Box::new(NpbKernel::cg(64, 6000)),
        _ => unreachable!(),
    }
}

fn main() {
    let mut t = TextTable::new(vec![
        "Workload",
        "Policy",
        "exec (s)",
        "speedup vs 4KB",
        "promotions",
        "time saved/promotion (ms)",
    ])
    .with_title("Fig. 5: promotion efficiency in a fragmented system");
    for name in ["graph500", "xsbench", "cg.D"] {
        let base = run_one(PolicyKind::Linux4k, 768, Some((1.0, 0.55)), 300.0, workload(name));
        let t4k = base.cpu_secs();
        for kind in
            [PolicyKind::Linux2m, PolicyKind::Ingens, PolicyKind::HawkEyePmu, PolicyKind::HawkEyeG]
        {
            let out = run_one(kind, 768, Some((1.0, 0.55)), 300.0, workload(name));
            let exec = out.cpu_secs();
            let promos = out.sim.machine().stats().promotions.max(1);
            let saved_ms = (t4k - exec).max(0.0) * 1e3 / promos as f64;
            t.row(vec![
                name.to_string(),
                kind.label().to_string(),
                secs(exec),
                spd(t4k / exec),
                promos.to_string(),
                format!("{saved_ms:.2}"),
            ]);
        }
        t.row(vec![name.to_string(), "Linux-4KB".into(), secs(t4k), "1.00x".into(), "0".into(), "-".into()]);
    }
    println!("{t}");
    println!(
        "(paper, Fig. 5: HawkEye up to 22% over no-promotion; 13%/12%/6% over\n\
         Linux & Ingens on Graph500/XSBench/cg.D; HawkEye-PMU saves the most\n\
         time per promotion because it stops below 2% overhead)"
    );
}
