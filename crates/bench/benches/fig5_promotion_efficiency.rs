//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::fig5_promotion_efficiency`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench fig5_promotion_efficiency`.

fn main() {
    hawkeye_bench::suite::run_main("fig5_promotion_efficiency");
}
