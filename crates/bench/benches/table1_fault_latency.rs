//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table1_fault_latency`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table1_fault_latency`.

fn main() {
    hawkeye_bench::suite::run_main("table1_fault_latency");
}
