//! Ablations of the DESIGN.md §6 design choices.
//!
//! 1. EMA weight of access-coverage samples.
//! 2. Promotion coverage floor (`min_coverage`).
//! 3. Bloat-recovery scan order (lowest- vs highest-overhead first).
//! 4. Pre-zeroing rate limit vs spin-up latency and interference.

use hawkeye_bench::{dirty_free_memory, secs, spd, PolicyKind};
use hawkeye_core::{BloatRecovery, HawkEye, HawkEyeConfig};
use hawkeye_kernel::{workload::script, KernelConfig, Machine, MemOp, Simulator};
use hawkeye_mem::{PageContent, Pfn};
use hawkeye_metrics::{Cycles, TextTable};
use hawkeye_tlb::{InterferenceModel, StoreMode};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_workloads::{HotspotWorkload, Spinup};

fn hawkeye_run(cfg: HawkEyeConfig) -> f64 {
    let mut kcfg = PolicyKind::HawkEyeG.config(768);
    kcfg.max_time = Cycles::from_secs(300.0);
    let mut sim = Simulator::new(kcfg, Box::new(HawkEye::new(cfg)));
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let pid = sim.spawn(Box::new(HotspotWorkload::graph500(72, 1500)));
    sim.run();
    sim.machine()
        .process(pid)
        .and_then(|p| p.finish_time())
        .unwrap_or(sim.machine().now())
        .as_secs()
}

fn ablate_alpha() {
    let mut t = TextTable::new(vec!["ema_alpha", "graph500 exec (s)"])
        .with_title("Ablation 1: EMA weight (fragmented graph500)");
    for alpha in [0.1, 0.4, 1.0] {
        let secs_v = hawkeye_run(HawkEyeConfig { ema_alpha: alpha, ..Default::default() });
        t.row(vec![format!("{alpha}"), secs(secs_v)]);
    }
    println!("{t}");
}

fn ablate_min_coverage() {
    let mut t = TextTable::new(vec!["min_coverage", "exec (s)", "promotions"])
        .with_title("Ablation 2: promotion coverage floor");
    for floor in [0.0, 1.0, 50.0] {
        let mut kcfg = PolicyKind::HawkEyeG.config(768);
        kcfg.max_time = Cycles::from_secs(300.0);
        let mut sim = Simulator::new(
            kcfg,
            Box::new(HawkEye::new(HawkEyeConfig { min_coverage: floor, ..Default::default() })),
        );
        sim.machine_mut().fragment(1.0, 0.55, 7);
        let pid = sim.spawn(Box::new(HotspotWorkload::graph500(72, 1500)));
        sim.run();
        let exec = sim
            .machine()
            .process(pid)
            .and_then(|p| p.finish_time())
            .unwrap_or(sim.machine().now())
            .as_secs();
        t.row(vec![
            format!("{floor}"),
            secs(exec),
            sim.machine().stats().promotions.to_string(),
        ]);
    }
    println!("{t}");
}

/// Two processes with bloated huge pages; one is "hot" (high overhead).
/// Scanning lowest-overhead-first protects the hot process's huge pages.
fn ablate_scan_order() {
    let build = || -> (Machine, u32, u32) {
        let mut m = Machine::new(KernelConfig { frames: 24 * 1024, ..KernelConfig::small() });
        let mut mk = |_tag: &str| {
            let pid = m.spawn(script("p", vec![]));
            m.process_mut(pid).unwrap().space_mut().mmap(Vpn(0), 20 * 512, VmaKind::Anon).unwrap();
            for r in 0..20u64 {
                m.fault_map_huge(pid, Vpn(r * 512)).unwrap();
                let pfn = m.process(pid).unwrap().space().translate(Vpn(r * 512)).unwrap().pfn;
                for i in 0..64 {
                    m.pm_mut().frame_mut(Pfn(pfn.0 + i)).set_content(PageContent::non_zero(9));
                }
            }
            pid
        };
        let hot = mk("hot");
        let cold = mk("cold");
        (m, hot, cold)
    };
    let mut t = TextTable::new(vec!["Scan order", "hot huge pages kept", "cold huge pages kept"])
        .with_title("Ablation 3: bloat-recovery scan order under pressure");
    for (label, invert) in [("lowest overhead first (HawkEye)", false), ("highest first", true)] {
        let (mut m, hot, cold) = build();
        let mut b = BloatRecovery::new(0.85, 0.70, 1e4, 32);
        let score = move |pid: u32| {
            let raw = if pid == hot { 0.9 } else { 0.1 };
            if invert {
                1.0 - raw
            } else {
                raw
            }
        };
        for s in 1..=40 {
            b.tick(&mut m, Cycles::from_millis(s * 50), score);
        }
        t.row(vec![
            label.to_string(),
            m.process(hot).unwrap().space().huge_pages().to_string(),
            m.process(cold).unwrap().space().huge_pages().to_string(),
        ]);
    }
    println!("{t}");
}

fn ablate_prezero_rate() {
    let mut t = TextTable::new(vec![
        "prezero rate (pages/s)",
        "KVM spin-up (s)",
        "NT interference @rate",
    ])
    .with_title("Ablation 4: pre-zeroing rate limit");
    let model = InterferenceModel::haswell();
    for rate in [1_000.0, 10_000.0, 100_000.0, 1_000_000.0] {
        let mut kcfg = PolicyKind::HawkEyeG.config(512);
        kcfg.max_time = Cycles::from_secs(400.0);
        let he = HawkEye::new(HawkEyeConfig { prezero_pages_per_sec: rate, ..Default::default() });
        let mut sim = Simulator::new(kcfg, Box::new(he));
        dirty_free_memory(sim.machine_mut());
        sim.spawn(script("warmup", vec![MemOp::Compute { cycles: 6_000_000_000 }]));
        sim.run();
        let pid = sim.spawn(Box::new(Spinup::new("kvm", 24 * 1024)));
        sim.run();
        let exec = sim.machine().process(pid).unwrap().cpu_time().as_secs();
        let slow = model.slowdown(0.21, 3.0, StoreMode::NonTemporal, rate * 4096.0) - 1.0;
        t.row(vec![format!("{rate:.0}"), secs(exec), format!("{:.2}%", slow * 100.0)]);
    }
    println!("{t}");
    let _ = spd(1.0);
}

fn main() {
    ablate_alpha();
    ablate_min_coverage();
    ablate_scan_order();
    ablate_prezero_rate();
}
