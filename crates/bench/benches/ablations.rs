//! Ablations of the DESIGN.md §6 design choices.
//!
//! 1. EMA weight of access-coverage samples.
//! 2. Promotion coverage floor (`min_coverage`).
//! 3. Bloat-recovery scan order (lowest- vs highest-overhead first).
//! 4. Pre-zeroing rate limit vs spin-up latency and interference.
//!
//! All four sections' scenarios run through one engine fan-out (12
//! independent simulations); the sections are then printed as separate
//! tables and written as one `ablations.json` with a `sections` array.

use hawkeye_bench::{
    dirty_free_memory, run_scenarios, secs, write_json, Json, PolicyKind, Report, Row, Scenario,
};
use hawkeye_core::{BloatRecovery, HawkEye, HawkEyeConfig};
use hawkeye_kernel::{workload::script, KernelConfig, Machine, MemOp, Simulator};
use hawkeye_mem::{PageContent, Pfn};
use hawkeye_metrics::Cycles;
use hawkeye_tlb::{InterferenceModel, StoreMode};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_workloads::{HotspotWorkload, Spinup};

fn hawkeye_run(cfg: HawkEyeConfig) -> (f64, u64) {
    let mut kcfg = PolicyKind::HawkEyeG.config(768);
    kcfg.max_time = Cycles::from_secs(300.0);
    let mut sim = Simulator::new(kcfg, Box::new(HawkEye::new(cfg)));
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let pid = sim.spawn(Box::new(HotspotWorkload::graph500(72, 1500)));
    sim.run();
    let exec = sim
        .machine()
        .process(pid)
        .and_then(|p| p.finish_time())
        .unwrap_or(sim.machine().now())
        .as_secs();
    (exec, sim.machine().stats().promotions)
}

fn alpha_scenarios() -> Vec<Scenario<Row>> {
    [0.1, 0.4, 1.0]
        .into_iter()
        .map(|alpha| {
            Scenario::new(format!("ema_alpha {alpha}"), move || {
                let (exec, _) = hawkeye_run(HawkEyeConfig { ema_alpha: alpha, ..Default::default() });
                Row::new(vec![format!("{alpha}"), secs(exec)]).with_json(Json::obj(vec![
                    ("ema_alpha", Json::num(alpha)),
                    ("exec_secs", Json::num(exec)),
                ]))
            })
        })
        .collect()
}

fn min_coverage_scenarios() -> Vec<Scenario<Row>> {
    [0.0, 1.0, 50.0]
        .into_iter()
        .map(|floor| {
            Scenario::new(format!("min_coverage {floor}"), move || {
                let (exec, promos) =
                    hawkeye_run(HawkEyeConfig { min_coverage: floor, ..Default::default() });
                Row::new(vec![format!("{floor}"), secs(exec), promos.to_string()]).with_json(
                    Json::obj(vec![
                        ("min_coverage", Json::num(floor)),
                        ("exec_secs", Json::num(exec)),
                        ("promotions", Json::int(promos)),
                    ]),
                )
            })
        })
        .collect()
}

/// Two processes with bloated huge pages; one is "hot" (high overhead).
/// Scanning lowest-overhead-first protects the hot process's huge pages.
fn scan_order_scenarios() -> Vec<Scenario<Row>> {
    [("lowest overhead first (HawkEye)", false), ("highest first", true)]
        .into_iter()
        .map(|(label, invert)| {
            Scenario::new(label, move || {
                let mut m =
                    Machine::new(KernelConfig { frames: 24 * 1024, ..KernelConfig::small() });
                let mut mk = |_tag: &str| {
                    let pid = m.spawn(script("p", vec![]));
                    m.process_mut(pid)
                        .unwrap()
                        .space_mut()
                        .mmap(Vpn(0), 20 * 512, VmaKind::Anon)
                        .unwrap();
                    for r in 0..20u64 {
                        m.fault_map_huge(pid, Vpn(r * 512)).unwrap();
                        let pfn =
                            m.process(pid).unwrap().space().translate(Vpn(r * 512)).unwrap().pfn;
                        for i in 0..64 {
                            m.pm_mut()
                                .frame_mut(Pfn(pfn.0 + i))
                                .set_content(PageContent::non_zero(9));
                        }
                    }
                    pid
                };
                let hot = mk("hot");
                let cold = mk("cold");
                let mut b = BloatRecovery::new(0.85, 0.70, 1e4, 32);
                let score = move |pid: u32| {
                    let raw = if pid == hot { 0.9 } else { 0.1 };
                    if invert {
                        1.0 - raw
                    } else {
                        raw
                    }
                };
                for s in 1..=40 {
                    b.tick(&mut m, Cycles::from_millis(s * 50), score);
                }
                let hot_kept = m.process(hot).unwrap().space().huge_pages();
                let cold_kept = m.process(cold).unwrap().space().huge_pages();
                Row::new(vec![label.to_string(), hot_kept.to_string(), cold_kept.to_string()])
                    .with_json(Json::obj(vec![
                        ("scan_order", Json::str(label)),
                        ("hot_huge_pages_kept", Json::int(hot_kept)),
                        ("cold_huge_pages_kept", Json::int(cold_kept)),
                    ]))
            })
        })
        .collect()
}

fn prezero_scenarios() -> Vec<Scenario<Row>> {
    [1_000.0, 10_000.0, 100_000.0, 1_000_000.0]
        .into_iter()
        .map(|rate| {
            Scenario::new(format!("prezero {rate}"), move || {
                let mut kcfg = PolicyKind::HawkEyeG.config(512);
                kcfg.max_time = Cycles::from_secs(400.0);
                let he =
                    HawkEye::new(HawkEyeConfig { prezero_pages_per_sec: rate, ..Default::default() });
                let mut sim = Simulator::new(kcfg, Box::new(he));
                dirty_free_memory(sim.machine_mut());
                sim.spawn(script("warmup", vec![MemOp::Compute { cycles: 6_000_000_000 }]));
                sim.run();
                let pid = sim.spawn(Box::new(Spinup::new("kvm", 24 * 1024)));
                sim.run();
                let exec = sim.machine().process(pid).unwrap().cpu_time().as_secs();
                let model = InterferenceModel::haswell();
                let slow = model.slowdown(0.21, 3.0, StoreMode::NonTemporal, rate * 4096.0) - 1.0;
                Row::new(vec![format!("{rate:.0}"), secs(exec), format!("{:.2}%", slow * 100.0)])
                    .with_json(Json::obj(vec![
                        ("prezero_pages_per_sec", Json::num(rate)),
                        ("spinup_secs", Json::num(exec)),
                        ("nt_interference", Json::num(slow)),
                    ]))
            })
        })
        .collect()
}

/// One ablation section: title, table columns, scenarios.
type Section = (&'static str, Vec<&'static str>, Vec<Scenario<Row>>);

fn main() {
    let sections: Vec<Section> = vec![
        (
            "Ablation 1: EMA weight (fragmented graph500)",
            vec!["ema_alpha", "graph500 exec (s)"],
            alpha_scenarios(),
        ),
        (
            "Ablation 2: promotion coverage floor",
            vec!["min_coverage", "exec (s)", "promotions"],
            min_coverage_scenarios(),
        ),
        (
            "Ablation 3: bloat-recovery scan order under pressure",
            vec!["Scan order", "hot huge pages kept", "cold huge pages kept"],
            scan_order_scenarios(),
        ),
        (
            "Ablation 4: pre-zeroing rate limit",
            vec!["prezero rate (pages/s)", "KVM spin-up (s)", "NT interference @rate"],
            prezero_scenarios(),
        ),
    ];
    // Flatten everything into one fan-out so all 12 simulations share the
    // pool, then split the ordered results back into their sections.
    let mut titles_cols = Vec::new();
    let mut counts = Vec::new();
    let mut all: Vec<Scenario<Row>> = Vec::new();
    for (title, cols, scen) in sections {
        titles_cols.push((title, cols));
        counts.push(scen.len());
        all.extend(scen);
    }
    let mut results = run_scenarios(all).into_iter();

    let mut section_jsons = Vec::new();
    for ((title, cols), count) in titles_cols.into_iter().zip(counts) {
        let rows: Vec<Row> = results.by_ref().take(count).collect();
        let mut report = Report::new("ablations", title, cols);
        let row_jsons: Vec<Json> = rows.iter().map(|r| r.json.clone()).collect();
        report.extend(rows);
        print!("{}", report.text());
        section_jsons
            .push(Json::obj(vec![("section", Json::str(title)), ("rows", Json::Arr(row_jsons))]));
    }
    write_json(
        "ablations",
        &Json::obj(vec![
            ("target", Json::str("ablations")),
            ("title", Json::str("DESIGN.md §6 ablations")),
            ("sections", Json::Arr(section_jsons)),
        ]),
    );
}
