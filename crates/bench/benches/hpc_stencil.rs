//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::hpc_stencil`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench hpc_stencil`.

fn main() {
    hawkeye_bench::suite::run_main("hpc_stencil");
}
