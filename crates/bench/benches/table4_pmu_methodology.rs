//! Thin wrapper: the experiment lives in `hawkeye_bench::suite::table4_pmu_methodology`
//! so `hawkeye-report` can run the identical code in-process
//! (DESIGN.md §12). Run it standalone via
//! `cargo bench -p hawkeye-bench --bench table4_pmu_methodology`.

fn main() {
    hawkeye_bench::suite::run_main("table4_pmu_methodology");
}
