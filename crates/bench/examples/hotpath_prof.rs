//! Ad-hoc wall-clock harness for the simulator's hot path.
//!
//! Replicates the fig8 "sensitive + lightly-loaded Redis" pair (the
//! suite's most touch-bound shape) under the same scopes the report
//! suite uses, so optimizations can be timed in isolation:
//!
//! ```text
//! cargo run --release -p hawkeye-bench --example hotpath_prof [bare|scoped]
//! ```

use hawkeye_bench::PolicyKind;
use hawkeye_kernel::Simulator;
use hawkeye_metrics::Cycles;
use hawkeye_workloads::{HotspotWorkload, RedisKv};
use std::time::Instant;

fn run_pair(kind: PolicyKind) -> f64 {
    let mut cfg = kind.config(768);
    cfg.max_time = Cycles::from_secs(400.0);
    let mut sim = Simulator::new(cfg, kind.build());
    sim.machine_mut().fragment(1.0, 0.55, 7);
    let sens_pid = sim.spawn(Box::new(HotspotWorkload::graph500(56, 4500)));
    sim.spawn(Box::new(RedisKv::lightly_loaded(24 * 1024, 100_000_000, 23)));
    sim.run_while(|m| m.process(sens_pid).map(|p| !p.is_finished()).unwrap_or(false));
    sim.machine()
        .process(sens_pid)
        .and_then(|p| p.finish_time())
        .unwrap_or(sim.machine().now())
        .as_secs()
}

/// Component timings: page-table access, MMU model, PMU recording.
fn micro() {
    use hawkeye_mem::rng::SplitMix64;
    use hawkeye_mem::Pfn;
    use hawkeye_vm::{PageSize, PageTable, Vpn};

    const PAGES: u64 = 56 * 512;
    const N: u64 = 10_000_000;
    let mut rng = SplitMix64::new(7);
    let vpns: Vec<Vpn> = (0..N).map(|_| Vpn(rng.below(PAGES))).collect();

    let mut pt = PageTable::new();
    for v in 0..PAGES {
        pt.map_base(Vpn(v), Pfn(v), false).unwrap();
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for v in &vpns {
        acc = acc.wrapping_add(pt.access(*v, false).unwrap().pfn.0);
    }
    println!("pt.access (base): {:.1} ns/op ({acc:x})", t0.elapsed().as_nanos() as f64 / N as f64);

    let mut pth = PageTable::new();
    for h in 0..56u64 {
        pth.map_huge(hawkeye_vm::Hvpn(h), Pfn(h * 512)).unwrap();
    }
    let t0 = Instant::now();
    let mut acc = 0u64;
    for v in &vpns {
        acc = acc.wrapping_add(pth.access(*v, false).unwrap().pfn.0);
    }
    println!("pt.access (huge): {:.1} ns/op ({acc:x})", t0.elapsed().as_nanos() as f64 / N as f64);

    let mut mmu = hawkeye_tlb::Mmu::new(hawkeye_tlb::TlbConfig::default());
    let t0 = Instant::now();
    let mut cyc = 0u64;
    for v in &vpns {
        cyc = cyc.wrapping_add(mmu.access(1, *v, PageSize::Base, false).cycles.get());
    }
    println!("mmu.access (base): {:.1} ns/op ({cyc:x})", t0.elapsed().as_nanos() as f64 / N as f64);

    let t0 = Instant::now();
    let mut cyc = 0u64;
    for v in &vpns {
        cyc = cyc.wrapping_add(mmu.access(1, *v, PageSize::Huge, false).cycles.get());
    }
    println!("mmu.access (huge): {:.1} ns/op ({cyc:x})", t0.elapsed().as_nanos() as f64 / N as f64);
}

fn main() {
    let mode = std::env::args().nth(1).unwrap_or_else(|| "scoped".into());
    if mode == "micro" {
        micro();
        return;
    }
    let scoped = mode != "bare";
    for kind in [PolicyKind::Linux4k, PolicyKind::HawkEyePmu] {
        let t0 = Instant::now();
        let finish;
        if scoped {
            hawkeye_trace::set_forced(true);
            hawkeye_metrics::registry::scope::begin();
            hawkeye_trace::scope::begin(hawkeye_trace::DEFAULT_CAPACITY);
            finish = run_pair(kind);
            let _ = hawkeye_trace::scope::end();
            let _ = hawkeye_metrics::registry::scope::end();
        } else {
            finish = run_pair(kind);
        }
        println!("{kind:?} ({mode}): host {:.2?}, sim finish {finish:.3}s", t0.elapsed());
    }
}
