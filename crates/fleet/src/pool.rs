//! In-tree scoped worker pool for the scenario and fleet engines.
//!
//! `std::thread` only — tier-1 stays offline, no external runtime. Jobs
//! are claimed work-stealing style from a shared atomic cursor, but every
//! result lands in the slot of its *submission* index, so the returned
//! vector is in submission order regardless of worker count or completion
//! order. That ordered reassembly is what makes every bench table print
//! byte-identical output at any `HAWKEYE_BENCH_THREADS` setting.
//!
//! This module moved here from `hawkeye-bench` (which re-exports it) so
//! the fleet orchestrator can fan host groups across the same pool
//! without a dependency cycle.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A unit of work for the pool.
pub type Job<T> = Box<dyn FnOnce() -> T + Send>;

/// Worker count for this process: the `HAWKEYE_BENCH_THREADS` override
/// when set (clamped to ≥ 1; constrained CI runners pin it to 1), else
/// [`std::thread::available_parallelism`]. An unparsable override warns
/// once on stderr and is ignored.
pub fn worker_threads() -> usize {
    if let Some(n) = hawkeye_metrics::env::parse::<usize>("HAWKEYE_BENCH_THREADS") {
        return n.max(1);
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Runs `jobs` on up to `threads` scoped workers and returns the results
/// in submission order. `threads <= 1` runs inline on the caller's
/// thread — same results, no pool.
pub fn run_ordered<T: Send>(jobs: Vec<Job<T>>, threads: usize) -> Vec<T> {
    let n = jobs.len();
    if threads <= 1 || n <= 1 {
        return jobs.into_iter().map(|job| job()).collect();
    }
    let cursor = AtomicUsize::new(0);
    let jobs: Vec<Mutex<Option<Job<T>>>> =
        jobs.into_iter().map(|j| Mutex::new(Some(j))).collect();
    let slots: Vec<Mutex<Option<T>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|s| {
        for _ in 0..threads.min(n) {
            s.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let job = jobs[i].lock().expect("job slot").take().expect("claimed once");
                let result = job();
                *slots[i].lock().expect("result slot") = Some(result);
            });
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().expect("result slot").expect("every job ran"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_submission_order() {
        for threads in [1, 2, 8, 32] {
            let jobs: Vec<Job<usize>> = (0..100usize)
                .map(|i| {
                    Box::new(move || {
                        // Uneven work so completion order differs from
                        // submission order under real parallelism.
                        let mut acc = i;
                        for _ in 0..((i * 7919) % 1000) {
                            acc = (acc * 31 + 1) % 1_000_003;
                        }
                        let _ = acc;
                        i
                    }) as Job<usize>
                })
                .collect();
            let out = run_ordered(jobs, threads);
            assert_eq!(out, (0..100).collect::<Vec<_>>(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_single_job_sets() {
        assert!(run_ordered::<u32>(vec![], 8).is_empty());
        let one: Vec<Job<u32>> = vec![Box::new(|| 7)];
        assert_eq!(run_ordered(one, 8), vec![7]);
    }

    #[test]
    fn env_override_parses() {
        // Only exercises the parse path indirectly: worker_threads never
        // returns 0 whatever the environment says.
        assert!(worker_threads() >= 1);
    }
}
