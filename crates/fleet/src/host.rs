//! One fleet host: a cheap fast-path [`Simulator`] plus its tenants and
//! the detached trace/registry handles the orchestrator reads at epoch
//! boundaries.

use crate::hook::HostObs;
use hawkeye_kernel::rng::SplitMix64;
use hawkeye_kernel::workload::script;
use hawkeye_kernel::{HugePagePolicy, KernelConfig, MemOp, Simulator, Workload};
use hawkeye_metrics::registry;
use hawkeye_trace::{scope, Journal, TraceBuffer};
use hawkeye_vm::{VmaKind, Vpn};
use std::sync::{Arc, Mutex};

/// A tenant's workload shape, generated deterministically from the fleet
/// rng stream. The same spec replays identically on any host, which is
/// what makes migration (kill on the source, respawn on the destination)
/// deterministic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TenantSpec {
    /// Huge regions the tenant maps (2 MiB each).
    pub regions: u64,
    /// Trailing hot regions it keeps re-touching.
    pub hot: u64,
    /// Think cycles between touches.
    pub think: u32,
    /// Hot-loop repetitions.
    pub repeats: u32,
    /// Trailing pure-compute cycles (tenant lingers before exiting).
    pub compute: u64,
}

impl TenantSpec {
    /// Draws a tenant from the rng stream: 8–22 MiB footprint, a hot tail,
    /// and a lifetime of a few epochs.
    pub fn generate(rng: &mut SplitMix64) -> Self {
        let regions = 4 + rng.below(8); // 8–22 MiB
        TenantSpec {
            regions,
            hot: 1 + rng.below(regions.min(4)),
            think: 20 + rng.below(60) as u32,
            repeats: 1 + rng.below(3) as u32,
            compute: 20_000_000 + rng.below(60) * 1_000_000,
        }
    }

    /// The tenant's op script. Every tenant starts at `Vpn(0)` of its own
    /// address space; the hot tail sits in the *upper* regions so host
    /// ballooning (which releases the lower half) does not fight the hot
    /// loop.
    pub fn workload(&self, name: String) -> Box<dyn Workload> {
        let pages = self.regions * 512;
        let hot_start = (self.regions - self.hot) * 512;
        script(
            name,
            vec![
                MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
                MemOp::TouchRange {
                    start: Vpn(0),
                    pages,
                    write: true,
                    think: self.think,
                    stride: 1,
                    repeats: 1,
                },
                MemOp::TouchRange {
                    start: Vpn(hot_start),
                    pages: self.hot * 512,
                    write: false,
                    think: self.think,
                    stride: 1,
                    repeats: self.repeats,
                },
                MemOp::Compute { cycles: self.compute },
            ],
        )
    }
}

struct Tenant {
    pid: u32,
    spec: TenantSpec,
}

/// Per-host counters the SLO tables aggregate.
#[derive(Debug, Clone, Copy, Default)]
pub struct HostCounters {
    /// Tenants admitted (initial + churn + migrations in).
    pub spawned: u64,
    /// Tenants that ran to completion (or died to the OOM killer).
    pub finished: u64,
    /// Storm balloons applied to this host.
    pub balloons: u64,
    /// Cascade balloons applied to this host.
    pub cascade_balloons: u64,
    /// Tenants migrated away from this host.
    pub migrations_out: u64,
    /// Tenants migrated onto this host.
    pub migrations_in: u64,
}

/// One host: simulator + tenants + detached observability handles.
pub struct Host {
    pub(crate) sim: Simulator,
    trace: Option<Arc<Mutex<TraceBuffer>>>,
    cursor: u64,
    tenants: Vec<Tenant>,
    next_tenant: u64,
    /// Counters the orchestrator folds into the cohort SLOs.
    pub counters: HostCounters,
}

impl Host {
    /// Boots a host. A trace scope and a registry scope are opened for
    /// the build and immediately detached, so the machine's sinks write
    /// into buffers this `Host` owns — journals and registries per host,
    /// independent of which worker thread later steps it.
    pub fn new(
        config: KernelConfig,
        policy: Box<dyn HugePagePolicy>,
        trace_capacity: usize,
    ) -> Host {
        scope::begin(trace_capacity);
        registry::scope::begin();
        let sim = Simulator::new(config, policy);
        let trace = scope::detach();
        // The registry stays alive through the machine's own sink; the
        // detach only clears the thread-local so the next host (or a
        // later bench scenario on this thread) starts clean.
        drop(registry::scope::detach());
        Host {
            sim,
            trace,
            cursor: 0,
            tenants: Vec::new(),
            next_tenant: 0,
            counters: HostCounters::default(),
        }
    }

    /// Live tenant count.
    pub fn tenants(&self) -> usize {
        self.tenants.len()
    }

    /// Admits a tenant (initial placement, churn, or migration in).
    pub fn admit(&mut self, spec: TenantSpec) {
        let name = format!("t{}", self.next_tenant);
        self.next_tenant += 1;
        let pid = self.sim.spawn(spec.workload(name));
        self.tenants.push(Tenant { pid, spec });
        self.counters.spawned += 1;
    }

    /// Drops tenants whose process finished (natural exit or OOM kill).
    pub fn reap(&mut self) {
        let m = self.sim.machine();
        let mut finished = 0u64;
        self.tenants.retain(|t| {
            let done = m.process(t.pid).is_none_or(|p| p.is_finished());
            finished += done as u64;
            !done
        });
        self.counters.finished += finished;
    }

    /// Index of the largest live tenant (by footprint, lowest pid on
    /// ties), or `None` when the host is empty.
    fn largest(&self) -> Option<usize> {
        self.tenants
            .iter()
            .enumerate()
            .max_by_key(|(_, t)| (t.spec.regions, std::cmp::Reverse(t.pid)))
            .map(|(i, _)| i)
    }

    /// Balloons out `frac` of the largest tenant's footprint (its cold
    /// lower regions). Returns false when there is nothing to balloon.
    pub fn balloon_largest(&mut self, frac: f64, cascade: bool) -> bool {
        let Some(i) = self.largest() else { return false };
        let t = &self.tenants[i];
        let regions = ((t.spec.regions as f64 * frac) as u64).max(1);
        let regions = regions.min(t.spec.regions.saturating_sub(t.spec.hot));
        if regions == 0 {
            return false;
        }
        self.sim.balloon(t.pid, Vpn(0), regions * 512);
        if cascade {
            self.counters.cascade_balloons += 1;
        } else {
            self.counters.balloons += 1;
        }
        true
    }

    /// Evicts the largest tenant for migration: kills it here, returns
    /// its spec so the orchestrator can respawn it on the destination
    /// host (cold restart — the re-faulting *is* the migration cost).
    pub fn evict_largest(&mut self) -> Option<TenantSpec> {
        let i = self.largest()?;
        let t = self.tenants.remove(i);
        self.sim.kill(t.pid);
        self.counters.migrations_out += 1;
        Some(t.spec)
    }

    /// Books a migrated-in tenant (admit + counter).
    pub fn admit_migrated(&mut self, spec: TenantSpec) {
        self.admit(spec);
        self.counters.migrations_in += 1;
    }

    /// Builds the epoch-boundary observation for hooks, advancing the
    /// host's trace cursor past everything returned.
    pub fn observe(&mut self, host: usize, epoch: u32) -> HostObs {
        let events = match &self.trace {
            Some(shared) => {
                let buf = match shared.lock() {
                    Ok(g) => g,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let events = buf.tail(self.cursor);
                self.cursor = buf.pushed();
                events
            }
            None => Vec::new(),
        };
        let m = self.sim.machine();
        HostObs {
            host,
            epoch,
            now: m.now(),
            utilization: m.utilization(),
            fmfi: m.fmfi(),
            tenants: self.tenants.len() as u32,
            stats: m.stats(),
            metrics: m.metrics().snapshot(),
            events,
        }
    }

    /// Current utilization (storm/migration decisions).
    pub fn utilization(&self) -> f64 {
        self.sim.machine().utilization()
    }

    /// Drains the host's journal (records in emission order). Hosts built
    /// with tracing always return `Some`, even if empty.
    pub fn drain_journal(&mut self) -> Option<Journal> {
        self.trace.as_ref().map(Journal::drain_shared)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::BasePagesOnly;
    use hawkeye_metrics::Cycles;

    fn small_host(trace_capacity: usize) -> Host {
        let mut cfg = KernelConfig::small();
        cfg.frames = 16 * 1024; // 64 MiB
        Host::new(cfg, Box::new(BasePagesOnly), trace_capacity)
    }

    #[test]
    fn tenants_run_finish_and_reap() {
        let mut rng = SplitMix64::new(7);
        let mut host = small_host(1024);
        host.admit(TenantSpec::generate(&mut rng));
        host.admit(TenantSpec::generate(&mut rng));
        assert_eq!(host.tenants(), 2);
        host.sim.run_for(Cycles::from_secs(2.0));
        host.reap();
        assert_eq!(host.tenants(), 0, "tenants finish within the window");
        assert_eq!(host.counters.finished, 2);
        let journal = host.drain_journal().expect("traced host");
        assert!(!journal.records.is_empty(), "faults were journaled");
    }

    #[test]
    fn observe_advances_the_cursor() {
        let mut rng = SplitMix64::new(8);
        let mut host = small_host(4096);
        host.admit(TenantSpec::generate(&mut rng));
        host.sim.run_for(Cycles::from_millis(5));
        let first = host.observe(0, 0);
        assert!(!first.events.is_empty(), "events flowed");
        let again = host.observe(0, 0);
        assert!(again.events.is_empty(), "cursor caught up");
        assert!(first.metrics.is_some(), "registry attached");
    }

    #[test]
    fn eviction_frees_memory_and_spec_respawns() {
        let mut rng = SplitMix64::new(9);
        let mut host = small_host(16);
        let spec = TenantSpec::generate(&mut rng);
        host.admit(spec);
        host.sim.run_for(Cycles::from_millis(3));
        let util_before = host.utilization();
        assert!(util_before > 0.0);
        let evicted = host.evict_largest().expect("tenant present");
        assert_eq!(evicted, spec);
        assert!(host.utilization() < util_before, "kill freed the frames");
        let mut dest = small_host(16);
        dest.admit_migrated(evicted);
        assert_eq!(dest.counters.migrations_in, 1);
        assert_eq!(dest.tenants(), 1);
    }
}
