//! Fleet-scale serving for the HawkEye simulator.
//!
//! This crate instantiates thousands of cheap fast-path
//! [`hawkeye_kernel::Machine`]s behind an orchestrator: diurnal traffic
//! curves and tenant churn drive per-host workload intensity, overcommit
//! storms trigger ballooning and tenant migration between hosts, and
//! memory-pressure cascades propagate through a host group
//! (DESIGN.md §15).
//!
//! The control plane is the **userspace policy hook API** ([`FleetHook`],
//! mirroring eBPF-mm, arXiv 2409.11220): hooks observe each host's
//! `hawkeye-trace` event stream and registry gauges at epoch boundaries
//! and return [`hawkeye_kernel::Steering`] decisions — promotion
//! throttle, khugepaged budget, demotion pressure — applied at quantum
//! boundaries. Cohorts pair a kernel policy with a hook, so policies can
//! be composed and A/B-tested fleet-wide in one run.
//!
//! Everything is deterministic: host groups fan out across the
//! [`pool`] worker pool (moved here from `hawkeye-bench`, which
//! re-exports it), each group's story is serial, and all randomness
//! comes from seeded `SplitMix64` streams — fleet artifacts are
//! byte-identical at any `HAWKEYE_BENCH_THREADS`.
//!
//! # Examples
//!
//! ```
//! use hawkeye_fleet::{run, CohortSpec, FleetConfig, NoopHook};
//! use hawkeye_kernel::{BasePagesOnly, KernelConfig};
//!
//! let mut cfg = FleetConfig::sized(4);
//! cfg.epochs = 2;
//! let cohort = CohortSpec {
//!     name: "baseline",
//!     policy: || Box::new(BasePagesOnly),
//!     config: |mib| {
//!         let mut k = KernelConfig::small();
//!         k.frames = mib * 256;
//!         k
//!     },
//!     hook: || Box::new(NoopHook),
//! };
//! let result = run(&cfg, &[cohort], 2);
//! assert_eq!(result.cohorts.len(), 1);
//! assert!(result.cohorts[0].faults > 0);
//! ```

#![warn(missing_docs)]

pub mod hook;
pub mod host;
pub mod orchestrator;
pub mod pool;

pub use hook::{FleetHook, HostObs, NoopHook, ThrottleUnderPressure};
pub use host::{Host, HostCounters, TenantSpec};
pub use orchestrator::{run, run_observed, CohortSlo, CohortSpec, FleetConfig, FleetResult};
