//! The fleet orchestrator: cohorts × host groups × epochs.
//!
//! A *cohort* is a set of hosts running one kernel policy under one
//! [`FleetHook`] — the unit of A/B comparison. Hosts are partitioned
//! into *groups* (the migration/cascade domain); each group runs its
//! whole multi-epoch story inside one worker-pool job, serially and
//! deterministically, so the fleet fans out across the existing pool
//! with no cross-thread coupling at all. Per epoch, a group:
//!
//! 1. runs every host for one epoch of simulated time,
//! 2. reaps finished tenants (natural churn),
//! 3. feeds each host's trace tail + gauges to the hook and applies any
//!    steering at the quantum boundary,
//! 4. admits tenants up to the diurnal target (traffic curve),
//! 5. resolves overcommit storms — ballooning above `storm_util`,
//!    tenant migration to the least-loaded group member above
//!    `migrate_util` — and propagates a pressure cascade through the
//!    rest of the group.
//!
//! Every decision derives from a `SplitMix64` stream seeded by
//! `(seed, cohort, group)` and from simulated state only, so fleet
//! artifacts are byte-identical at any worker count and across runs.

use crate::hook::FleetHook;
use crate::host::{Host, HostCounters, TenantSpec};
use crate::pool::{self, Job};
use hawkeye_kernel::rng::SplitMix64;
use hawkeye_kernel::{HugePagePolicy, KernelConfig};
use hawkeye_metrics::registry::Subsystem;
use hawkeye_metrics::{Cycles, LogHistogram};
use hawkeye_obs::series::CohortAcc;
use hawkeye_trace::{Journal, TraceEvent};

/// Fleet shape and thresholds. All fields are plain data so a config can
/// be logged next to the artifacts it produced.
#[derive(Debug, Clone, Copy)]
pub struct FleetConfig {
    /// Hosts per cohort.
    pub hosts: usize,
    /// Hosts per migration/cascade group.
    pub group_size: usize,
    /// Epochs to run (one diurnal cycle spans the whole run).
    pub epochs: u32,
    /// Simulated time per epoch, in milliseconds.
    pub epoch_ms: u64,
    /// Fleet rng seed.
    pub seed: u64,
    /// Physical memory per host, MiB.
    pub host_mib: u64,
    /// Tenants per host at the diurnal trough.
    pub base_tenants: u32,
    /// Tenants per host at the diurnal peak.
    pub peak_tenants: u32,
    /// Utilization above which a host balloons its largest tenant.
    pub storm_util: f64,
    /// Utilization above which a host migrates its largest tenant away.
    pub migrate_util: f64,
    /// Utilization above which a cascading group member pre-balloons.
    pub cascade_util: f64,
    /// Trace-ring capacity for ordinary hosts (hooks read the tail).
    pub trace_capacity: usize,
    /// Hosts per cohort whose journals persist as artifacts.
    pub journal_hosts: usize,
    /// Trace-ring capacity for journaled hosts.
    pub journal_capacity: usize,
}

impl FleetConfig {
    /// The standard fleet shape at `hosts` hosts per cohort. Tenants are
    /// 8–22 MiB against 80 MiB hosts, so the diurnal peak overcommits
    /// and storms actually fire.
    pub fn sized(hosts: usize) -> Self {
        FleetConfig {
            hosts,
            group_size: 8,
            epochs: 8,
            epoch_ms: 20,
            seed: 411,
            host_mib: 80,
            base_tenants: 1,
            peak_tenants: 5,
            storm_util: 0.75,
            migrate_util: 0.90,
            cascade_util: 0.55,
            trace_capacity: 512,
            journal_hosts: 2,
            journal_capacity: 16 * 1024,
        }
    }

    /// The `fleet_slo` report shape: 1024 hosts per cohort.
    pub fn slo() -> Self {
        FleetConfig::sized(1024)
    }

    fn epoch(&self) -> Cycles {
        Cycles::from_millis(self.epoch_ms)
    }

    /// Diurnal tenant target at `epoch`: a triangle wave from
    /// `base_tenants` up to `peak_tenants` and back over the run.
    pub fn diurnal_target(&self, epoch: u32) -> u32 {
        let span = (self.peak_tenants - self.base_tenants.min(self.peak_tenants)) as f64;
        if self.epochs <= 1 {
            return self.peak_tenants;
        }
        let x = (epoch.min(self.epochs)) as f64 / self.epochs as f64;
        let intensity = 1.0 - (2.0 * x - 1.0).abs();
        self.base_tenants + (intensity * span).round() as u32
    }
}

/// One policy cohort: a kernel policy, its machine shape, and the
/// userspace hook steering it. Constructors are plain `fn` pointers so a
/// cohort spec is `Copy + Send` and each host group can build its own
/// private instances.
#[derive(Clone, Copy)]
pub struct CohortSpec {
    /// Cohort label ("HawkEye-G+throttle", ...).
    pub name: &'static str,
    /// Builds the kernel policy for one host.
    pub policy: fn() -> Box<dyn HugePagePolicy>,
    /// Builds the kernel config for one host, given its memory in MiB.
    pub config: fn(u64) -> KernelConfig,
    /// Builds the hook instance for one host group.
    pub hook: fn() -> Box<dyn FleetHook>,
}

/// Fleet-level SLOs for one cohort, aggregated across all of its hosts.
#[derive(Debug, Clone)]
pub struct CohortSlo {
    /// Cohort label.
    pub cohort: String,
    /// Hook name (from one instance).
    pub hook: String,
    /// Hosts aggregated.
    pub hosts: usize,
    /// Page faults fleet-wide (count of the merged latency histogram).
    pub faults: u64,
    /// Median fault latency, µs (log-bucketed, reproducible).
    pub p50_fault_us: f64,
    /// 99th-percentile fault latency, µs.
    pub p99_fault_us: f64,
    /// Aggregate MMU overhead: Σ walk cycles / Σ unhalted cycles.
    pub mmu_overhead: f64,
    /// RSS headroom: 1 − mean utilization over every (host, epoch).
    pub rss_headroom: f64,
    /// Kernel promotions fleet-wide.
    pub promotions: u64,
    /// Kernel demotions fleet-wide.
    pub demotions: u64,
    /// Zero pages recovered by bloat recovery fleet-wide.
    pub deduped_pages: u64,
    /// OOM kills fleet-wide.
    pub ooms: u64,
    /// Tenant admissions / completions / migrations and balloon events.
    pub tenancy: HostCounters,
    /// Steering decisions the hook issued.
    pub steer_decisions: u64,
}

/// The fleet run's outputs: per-cohort SLOs plus the sampled journals.
pub struct FleetResult {
    /// One entry per cohort, in input order.
    pub cohorts: Vec<CohortSlo>,
    /// `("<cohort>/h<index>", journal)` for each journaled host.
    pub journals: Vec<(String, Journal)>,
    /// Per-cohort telemetry accumulators (same order as `cohorts`),
    /// present only when obs collection was enabled for the run.
    pub obs: Option<Vec<CohortAcc>>,
}

/// Per-group reduction, folded into [`CohortSlo`]s on the main thread.
struct GroupOutcome {
    fault_hist: LogHistogram,
    walk: u64,
    unhalted: u64,
    util_sum: f64,
    util_samples: u64,
    promotions: u64,
    demotions: u64,
    deduped: u64,
    ooms: u64,
    counters: HostCounters,
    steers: u64,
    journals: Vec<(usize, Journal)>,
    obs: Option<CohortAcc>,
}

/// Runs the fleet: every `(cohort, group)` pair becomes one pool job.
/// Results aggregate in submission order, so the output is byte-stable
/// at any `threads`. Telemetry collection follows
/// [`hawkeye_obs::enabled`]; use [`run_observed`] to pin it explicitly.
pub fn run(cfg: &FleetConfig, cohorts: &[CohortSpec], threads: usize) -> FleetResult {
    run_observed(cfg, cohorts, threads, hawkeye_obs::enabled())
}

/// [`run`] with telemetry collection pinned by `observe` instead of the
/// process-global gate. When enabled, each group additionally folds its
/// hosts' per-epoch windows (fault latencies from the trace tail the
/// hook already sees, walk/unhalted registry deltas, utilization, FMFI)
/// into mergeable [`CohortAcc`]s — pure reads of state the epoch loop
/// computes anyway, so the simulation is bit-identical either way; when
/// disabled the per-epoch cost is one `Option` branch.
pub fn run_observed(
    cfg: &FleetConfig,
    cohorts: &[CohortSpec],
    threads: usize,
    observe: bool,
) -> FleetResult {
    let groups = cfg.hosts.div_ceil(cfg.group_size.max(1));
    let mut jobs: Vec<Job<GroupOutcome>> = Vec::new();
    for (ci, spec) in cohorts.iter().enumerate() {
        let spec = *spec;
        let cfg = *cfg;
        for g in 0..groups {
            let lo = g * cfg.group_size;
            let n = cfg.group_size.min(cfg.hosts - lo);
            jobs.push(Box::new(move || run_group(&cfg, &spec, ci, g, n, observe)));
        }
    }
    let outcomes = pool::run_ordered(jobs, threads);
    let mut result = FleetResult {
        cohorts: Vec::new(),
        journals: Vec::new(),
        obs: observe.then(Vec::new),
    };
    for (ci, spec) in cohorts.iter().enumerate() {
        let mut hist = LogHistogram::new();
        let (mut walk, mut unhalted) = (0u64, 0u64);
        let (mut util_sum, mut util_samples) = (0.0f64, 0u64);
        let mut slo = CohortSlo {
            cohort: spec.name.to_string(),
            hook: (spec.hook)().name().to_string(),
            hosts: cfg.hosts,
            faults: 0,
            p50_fault_us: 0.0,
            p99_fault_us: 0.0,
            mmu_overhead: 0.0,
            rss_headroom: 0.0,
            promotions: 0,
            demotions: 0,
            deduped_pages: 0,
            ooms: 0,
            tenancy: HostCounters::default(),
            steer_decisions: 0,
        };
        let mut cohort_acc = result.obs.is_some().then(CohortAcc::default);
        for out in &outcomes[ci * groups..(ci + 1) * groups] {
            if let (Some(acc), Some(shard)) = (cohort_acc.as_mut(), out.obs.as_ref()) {
                acc.merge(shard);
            }
            hist.merge(&out.fault_hist);
            walk += out.walk;
            unhalted += out.unhalted;
            util_sum += out.util_sum;
            util_samples += out.util_samples;
            slo.promotions += out.promotions;
            slo.demotions += out.demotions;
            slo.deduped_pages += out.deduped;
            slo.ooms += out.ooms;
            slo.steer_decisions += out.steers;
            let c = &mut slo.tenancy;
            c.spawned += out.counters.spawned;
            c.finished += out.counters.finished;
            c.balloons += out.counters.balloons;
            c.cascade_balloons += out.counters.cascade_balloons;
            c.migrations_out += out.counters.migrations_out;
            c.migrations_in += out.counters.migrations_in;
            for (host, journal) in &out.journals {
                result.journals.push((format!("{}/h{host}", spec.name), journal.clone()));
            }
        }
        slo.faults = hist.count();
        slo.p50_fault_us = Cycles::new(hist.percentile(50.0)).as_micros();
        slo.p99_fault_us = Cycles::new(hist.percentile(99.0)).as_micros();
        slo.mmu_overhead = if unhalted == 0 { 0.0 } else { walk as f64 / unhalted as f64 };
        slo.rss_headroom = if util_samples == 0 {
            0.0
        } else {
            1.0 - util_sum / util_samples as f64
        };
        result.cohorts.push(slo);
        if let (Some(all), Some(acc)) = (result.obs.as_mut(), cohort_acc) {
            all.push(acc);
        }
    }
    result
}

/// Runs one host group start to finish (serial, deterministic).
fn run_group(
    cfg: &FleetConfig,
    spec: &CohortSpec,
    cohort: usize,
    group: usize,
    nhosts: usize,
    observe: bool,
) -> GroupOutcome {
    let mut rng = SplitMix64::new(
        cfg.seed ^ ((cohort as u64) << 48) ^ ((group as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)),
    );
    let mut hook = (spec.hook)();
    let mut out = GroupOutcome {
        fault_hist: LogHistogram::new(),
        walk: 0,
        unhalted: 0,
        util_sum: 0.0,
        util_samples: 0,
        promotions: 0,
        demotions: 0,
        deduped: 0,
        ooms: 0,
        counters: HostCounters::default(),
        steers: 0,
        journals: Vec::new(),
        obs: observe.then(|| CohortAcc::with_epochs(cfg.epochs as usize)),
    };
    // Per-host cumulative (walk, unhalted) cycles at the previous epoch
    // boundary, so each epoch records deltas. Allocated only when
    // observing — the disabled path costs one branch per loop.
    let mut obs_prev = observe.then(|| vec![(0u64, 0u64); nhosts]);
    let journaled = |i: usize| group * cfg.group_size + i < cfg.journal_hosts;
    let mut hosts: Vec<Host> = (0..nhosts)
        .map(|i| {
            let capacity =
                if journaled(i) { cfg.journal_capacity } else { cfg.trace_capacity };
            Host::new((spec.config)(cfg.host_mib), (spec.policy)(), capacity)
        })
        .collect();
    // Initial placement at the trough target.
    for host in &mut hosts {
        let target = cfg.diurnal_target(0) + rng.below(2) as u32;
        while (host.tenants() as u32) < target {
            host.admit(TenantSpec::generate(&mut rng));
        }
    }
    for epoch in 0..cfg.epochs {
        // 1. One epoch of simulated time per host.
        for host in &mut hosts {
            host.sim.run_for(cfg.epoch());
        }
        // 2. Natural churn: finished tenants free their memory.
        for host in &mut hosts {
            host.reap();
        }
        // 3. Hook observation + steering, in host order. When telemetry
        // is on, the same HostObs window feeds the per-epoch accumulator
        // before the hook sees it — pure reads, zero simulation drift.
        for (i, host) in hosts.iter_mut().enumerate() {
            let obs = host.observe(group * cfg.group_size + i, epoch);
            out.util_sum += obs.utilization;
            out.util_samples += 1;
            if let (Some(acc), Some(prev)) = (out.obs.as_mut(), obs_prev.as_mut()) {
                let slot = acc.epoch_mut(epoch as usize);
                slot.util_sum += obs.utilization;
                slot.fmfi_sum += obs.fmfi;
                slot.hosts += 1;
                for r in &obs.events {
                    if let TraceEvent::Fault { cycles, .. } = r.event {
                        slot.fault_sketch.observe(cycles);
                    }
                }
                if let Some(m) = &obs.metrics {
                    let (walk, unhalted) = (m.cpu_cycles(Subsystem::Walk), m.unhalted());
                    let (pw, pu) = prev[i];
                    slot.walk_cycles += walk.saturating_sub(pw);
                    slot.unhalted_cycles += unhalted.saturating_sub(pu);
                    prev[i] = (walk, unhalted);
                }
            }
            if let Some(s) = hook.steer(&obs) {
                host.sim.steer(&s);
                out.steers += 1;
            }
        }
        // 4. Diurnal admission up to the traffic-curve target.
        for host in &mut hosts {
            let target = cfg.diurnal_target(epoch + 1) + rng.below(2) as u32;
            while (host.tenants() as u32) < target {
                host.admit(TenantSpec::generate(&mut rng));
            }
        }
        // 5. Overcommit storms: migrate above `migrate_util`, balloon
        // above `storm_util`; any storm pressures the rest of the group.
        let mut stormed = false;
        for i in 0..hosts.len() {
            let util = hosts[i].utilization();
            if util >= cfg.migrate_util && hosts.len() > 1 {
                let dest = least_loaded(&hosts, i);
                if let Some(tenant) = hosts[i].evict_largest() {
                    hosts[dest].admit_migrated(tenant);
                    stormed = true;
                }
            } else if util >= cfg.storm_util {
                stormed |= hosts[i].balloon_largest(0.5, false);
            }
        }
        if stormed {
            for host in &mut hosts {
                let util = host.utilization();
                if util >= cfg.cascade_util && util < cfg.storm_util {
                    host.balloon_largest(0.25, true);
                }
            }
        }
    }
    // Final reduction.
    for (i, host) in hosts.iter_mut().enumerate() {
        let stats = host.sim.machine().stats();
        out.promotions += stats.promotions;
        out.demotions += stats.demotions;
        out.deduped += stats.deduped_zero_pages;
        out.ooms += stats.oom_events;
        if let Some(m) = host.sim.machine().metrics().snapshot() {
            if let Some(h) = m.hist("fault_cycles") {
                out.fault_hist.merge(h);
            }
            out.walk += m.cpu_cycles(Subsystem::Walk);
            out.unhalted += m.unhalted();
        }
        let c = host.counters;
        out.counters.spawned += c.spawned;
        out.counters.finished += c.finished;
        out.counters.balloons += c.balloons;
        out.counters.cascade_balloons += c.cascade_balloons;
        out.counters.migrations_out += c.migrations_out;
        out.counters.migrations_in += c.migrations_in;
        if journaled(i) {
            if let Some(journal) = host.drain_journal() {
                out.journals.push((group * cfg.group_size + i, journal));
            }
        }
    }
    out
}

/// The least-loaded host in the group other than `not` (lowest index on
/// ties) — the migration destination.
fn least_loaded(hosts: &[Host], not: usize) -> usize {
    let mut best = usize::MAX;
    let mut best_util = f64::INFINITY;
    for (j, h) in hosts.iter().enumerate() {
        if j == not {
            continue;
        }
        let u = h.utilization();
        if u < best_util {
            best_util = u;
            best = j;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hook::{NoopHook, ThrottleUnderPressure};
    use hawkeye_kernel::BasePagesOnly;

    fn base_cohort() -> CohortSpec {
        CohortSpec {
            name: "base",
            policy: || Box::new(BasePagesOnly),
            config: |mib| {
                let mut cfg = KernelConfig::small();
                cfg.frames = mib * 256;
                cfg
            },
            hook: || Box::new(NoopHook),
        }
    }

    fn throttled_cohort() -> CohortSpec {
        CohortSpec {
            name: "base+throttle",
            policy: || Box::new(BasePagesOnly),
            config: |mib| {
                let mut cfg = KernelConfig::small();
                cfg.frames = mib * 256;
                cfg
            },
            hook: || Box::new(ThrottleUnderPressure::new(0.55, 0.8)),
        }
    }

    #[test]
    fn diurnal_curve_rises_and_falls() {
        let cfg = FleetConfig::sized(8);
        assert_eq!(cfg.diurnal_target(0), cfg.base_tenants);
        assert_eq!(cfg.diurnal_target(cfg.epochs / 2), cfg.peak_tenants);
        assert_eq!(cfg.diurnal_target(cfg.epochs), cfg.base_tenants);
    }

    #[test]
    fn tiny_fleet_runs_and_reports() {
        let mut cfg = FleetConfig::sized(8);
        cfg.epochs = 4;
        let result = run(&cfg, &[base_cohort(), throttled_cohort()], 2);
        assert_eq!(result.cohorts.len(), 2);
        for slo in &result.cohorts {
            assert_eq!(slo.hosts, 8);
            assert!(slo.faults > 0, "{}: tenants faulted", slo.cohort);
            assert!(slo.tenancy.spawned > 0 && slo.tenancy.finished > 0);
            assert!(slo.p99_fault_us >= slo.p50_fault_us);
            assert!(slo.rss_headroom > 0.0 && slo.rss_headroom < 1.0);
        }
        assert_eq!(
            result.journals.len(),
            2 * cfg.journal_hosts,
            "journaled hosts per cohort"
        );
        assert!(result.journals.iter().all(|(_, j)| !j.records.is_empty()));
    }

    #[test]
    fn observed_runs_collect_without_drifting_the_simulation() {
        let mut cfg = FleetConfig::sized(8);
        cfg.epochs = 4;
        let plain = run_observed(&cfg, &[base_cohort()], 2, false);
        let observed = run_observed(&cfg, &[base_cohort()], 2, true);
        // Zero drift: collection only reads state the epoch loop already
        // computes, so every simulated observable matches exactly.
        assert!(plain.obs.is_none());
        for (x, y) in plain.cohorts.iter().zip(&observed.cohorts) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert_eq!(plain.journals, observed.journals);
        // And the accumulators carry real, fully-sampled telemetry.
        let obs = observed.obs.expect("observed run exports accumulators");
        assert_eq!(obs.len(), 1);
        let acc = &obs[0];
        assert_eq!(acc.epochs.len(), cfg.epochs as usize);
        for (e, slot) in acc.epochs.iter().enumerate() {
            assert_eq!(slot.hosts, cfg.hosts as u64, "epoch {e} sampled every host");
            assert!(slot.unhalted_cycles > 0, "epoch {e} charged cycles");
        }
        assert!(
            acc.epochs.iter().any(|s| s.fault_sketch.count() > 0),
            "fault windows reach the sketch"
        );
        // Determinism: worker count and repetition don't change the
        // merged accumulators (byte-compared via the sketch encoding).
        let again = run_observed(&cfg, &[base_cohort()], 8, true);
        assert_eq!(Some(obs), again.obs);
    }

    #[test]
    fn fleet_is_deterministic_across_worker_counts() {
        let mut cfg = FleetConfig::sized(16);
        cfg.epochs = 3;
        let a = run(&cfg, &[base_cohort()], 1);
        let b = run(&cfg, &[base_cohort()], 8);
        for (x, y) in a.cohorts.iter().zip(&b.cohorts) {
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
        }
        assert_eq!(a.journals.len(), b.journals.len());
        for ((na, ja), (nb, jb)) in a.journals.iter().zip(&b.journals) {
            assert_eq!(na, nb);
            assert_eq!(ja, jb);
        }
    }
}
