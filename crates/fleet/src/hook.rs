//! The userspace policy hook API (mirroring eBPF-mm, arXiv 2409.11220).
//!
//! A [`FleetHook`] is an external controller: once per epoch, for every
//! host, it observes that host's trace-event stream since the previous
//! epoch plus its registry gauges and kernel counters, and may return a
//! [`Steering`] decision — promotion throttle, khugepaged budget,
//! demotion pressure — which the orchestrator applies at the next
//! quantum boundary via [`hawkeye_kernel::Simulator::steer`]. Hooks
//! never touch a machine directly, so a cohort's kernel policy and its
//! fleet controller compose freely and can be A/B-tested in one run.
//!
//! Determinism contract: hooks run serially, in host order, at the epoch
//! barrier of their host group. A hook may keep state (keyed by
//! [`HostObs::host`]) and stays deterministic as long as its decisions
//! are a pure function of the observations it has been fed.

use hawkeye_kernel::{KernelStats, Steering};
use hawkeye_metrics::{Cycles, MachineMetrics};
use hawkeye_trace::{TraceEvent, TraceRecord};
use std::collections::BTreeSet;

/// Everything a hook gets to see about one host at one epoch boundary.
#[derive(Debug, Clone)]
pub struct HostObs {
    /// Host index within its cohort.
    pub host: usize,
    /// Epoch just completed (0-based).
    pub epoch: u32,
    /// The host's simulated clock.
    pub now: Cycles,
    /// Allocated-frame fraction, `0.0 ..= 1.0`.
    pub utilization: f64,
    /// Free-memory fragmentation index.
    pub fmfi: f64,
    /// Live tenants on the host.
    pub tenants: u32,
    /// Kernel counters (promotions, demotions, OOM kills, ...).
    pub stats: KernelStats,
    /// Registry snapshot (counters/gauges/histograms) for the host's
    /// machine; `None` only if the host was built without a registry.
    pub metrics: Option<MachineMetrics>,
    /// Trace records emitted since the previous epoch boundary (newest
    /// window of the host's bounded ring — overwritten records are gone).
    pub events: Vec<TraceRecord>,
}

/// A userspace fleet policy: observes per-host event streams and gauges,
/// returns steering decisions.
///
/// # Examples
///
/// A three-line controller: pause khugepaged on any host past 90%
/// utilization, release it otherwise.
///
/// ```
/// use hawkeye_fleet::{FleetHook, HostObs};
/// use hawkeye_kernel::Steering;
///
/// struct PauseWhenFull;
///
/// impl FleetHook for PauseWhenFull {
///     fn name(&self) -> &str {
///         "pause-when-full"
///     }
///     fn steer(&mut self, obs: &HostObs) -> Option<Steering> {
///         (obs.utilization > 0.9)
///             .then(|| Steering { khugepaged_budget: Some(0), ..Steering::default() })
///     }
/// }
/// ```
pub trait FleetHook: Send {
    /// Hook name, for tables and cohort labels.
    fn name(&self) -> &str;

    /// Called once per host per epoch, in host order. `None` leaves the
    /// host's current steering unchanged; `Some(s)` is applied before the
    /// next epoch runs.
    fn steer(&mut self, obs: &HostObs) -> Option<Steering>;
}

/// The hands-off hook: observes everything, steers nothing. The control
/// cohort in A/B runs.
#[derive(Debug, Default)]
pub struct NoopHook;

impl FleetHook for NoopHook {
    fn name(&self) -> &str {
        "noop"
    }

    fn steer(&mut self, _obs: &HostObs) -> Option<Steering> {
        None
    }
}

/// A pressure-aware controller: above `low` utilization it linearly
/// throttles promotion and raises demotion pressure; above `high` (or
/// after witnessing an OOM in the event stream) it pauses khugepaged
/// entirely and runs bloat recovery flat-out. Once a host drops back
/// below `low`, steering is released to the policy default.
#[derive(Debug)]
pub struct ThrottleUnderPressure {
    /// Utilization where throttling starts.
    pub low: f64,
    /// Utilization where promotion pauses completely.
    pub high: f64,
    /// Hosts currently steered away from the default (so release is
    /// explicit, not implicit).
    engaged: BTreeSet<usize>,
}

impl ThrottleUnderPressure {
    /// Creates the controller with the given utilization band.
    pub fn new(low: f64, high: f64) -> Self {
        assert!(0.0 < low && low < high, "bad utilization band");
        ThrottleUnderPressure {
            low,
            high,
            engaged: BTreeSet::new(),
        }
    }
}

impl FleetHook for ThrottleUnderPressure {
    fn name(&self) -> &str {
        "throttle-under-pressure"
    }

    fn steer(&mut self, obs: &HostObs) -> Option<Steering> {
        let oomed = obs
            .events
            .iter()
            .any(|r| matches!(r.event, TraceEvent::Oom));
        if oomed || obs.utilization >= self.high {
            self.engaged.insert(obs.host);
            return Some(Steering {
                promotion_throttle: 0.0,
                khugepaged_budget: Some(0),
                demotion_pressure: 1.0,
            });
        }
        if obs.utilization >= self.low {
            self.engaged.insert(obs.host);
            let f = (obs.utilization - self.low) / (self.high - self.low);
            return Some(Steering {
                promotion_throttle: 1.0 - f,
                khugepaged_budget: Some(4),
                demotion_pressure: f,
            });
        }
        if self.engaged.remove(&obs.host) {
            // Pressure cleared: hand the knobs back to the kernel policy.
            return Some(Steering::default());
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(host: usize, util: f64, events: Vec<TraceRecord>) -> HostObs {
        HostObs {
            host,
            epoch: 0,
            now: Cycles::new(0),
            utilization: util,
            fmfi: 0.0,
            tenants: 1,
            stats: KernelStats::default(),
            metrics: None,
            events,
        }
    }

    #[test]
    fn noop_never_steers() {
        let mut h = NoopHook;
        assert!(h.steer(&obs(0, 0.99, vec![])).is_none());
    }

    #[test]
    fn throttle_band_engages_and_releases() {
        let mut h = ThrottleUnderPressure::new(0.6, 0.9);
        assert!(
            h.steer(&obs(0, 0.3, vec![])).is_none(),
            "idle host untouched"
        );
        let mid = h.steer(&obs(0, 0.75, vec![])).expect("band engages");
        assert!(mid.promotion_throttle > 0.0 && mid.promotion_throttle < 1.0);
        assert!(mid.demotion_pressure > 0.0);
        let hi = h.steer(&obs(0, 0.95, vec![])).expect("pause above high");
        assert_eq!(hi.promotion_throttle, 0.0);
        assert_eq!(hi.khugepaged_budget, Some(0));
        let release = h.steer(&obs(0, 0.3, vec![])).expect("explicit release");
        assert_eq!(release, Steering::default());
        assert!(
            h.steer(&obs(0, 0.3, vec![])).is_none(),
            "released host untouched"
        );
    }

    #[test]
    fn oom_in_event_stream_forces_full_pressure() {
        let mut h = ThrottleUnderPressure::new(0.6, 0.9);
        let oom = TraceRecord {
            at: Cycles::new(1),
            pid: 3,
            machine: 0,
            event: TraceEvent::Oom,
        };
        let s = h
            .steer(&obs(1, 0.2, vec![oom]))
            .expect("OOM overrides utilization");
        assert_eq!(s.demotion_pressure, 1.0);
    }
}
