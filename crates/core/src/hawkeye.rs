//! The HawkEye policy: §3's algorithms behind the
//! [`hawkeye_kernel::HugePagePolicy`] interface.
//!
//! * Faults map huge pages immediately (served from the pre-zeroed pool,
//!   so latency stays low — §3.1/§3.2).
//! * Access bits are sampled in two phases (clear, then read after a
//!   window) into per-process [`AccessMap`]s (§3.3).
//! * Promotion order: **HawkEye-G** promotes from the globally highest
//!   non-empty access-coverage bucket, round-robin among tied processes —
//!   reproducing the paper's `A1,B1,C1,C2,B2,…` example (Fig. 4);
//!   **HawkEye-PMU** first picks the process with the highest *measured*
//!   MMU overhead (Table 4 counters) and stops below 2 % (§3.4).
//! * The pre-zeroing and bloat-recovery daemons run from the same tick.

use crate::access_map::AccessMap;
use crate::bloat::BloatRecovery;
use crate::config::{HawkEyeConfig, Variant};
use crate::estimator::estimate_overhead;
use crate::prezero::PrezeroDaemon;
use hawkeye_kernel::{FaultAction, HugePagePolicy, Machine, PromoteError, Steering};
use hawkeye_metrics::Cycles;
use hawkeye_policies::TokenBucket;
use hawkeye_vm::{Hvpn, Vpn};
use std::collections::BTreeMap;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SamplePhase {
    Idle,
    Armed { since: Cycles },
}

/// The HawkEye policy (both variants).
///
/// # Examples
///
/// ```
/// use hawkeye_core::{HawkEye, HawkEyeConfig};
/// use hawkeye_kernel::HugePagePolicy;
///
/// assert_eq!(HawkEye::new(HawkEyeConfig::default()).name(), "HawkEye-G");
/// assert_eq!(HawkEye::new(HawkEyeConfig::pmu()).name(), "HawkEye-PMU");
/// ```
#[derive(Debug)]
pub struct HawkEye {
    cfg: HawkEyeConfig,
    promo_budget: TokenBucket,
    prezero: PrezeroDaemon,
    bloat: BloatRecovery,
    maps: BTreeMap<u32, AccessMap>,
    /// Smoothed measured MMU overhead per process (PMU variant).
    measured: BTreeMap<u32, f64>,
    phase: SamplePhase,
    next_sample: Cycles,
    rr: u64,
    /// Last process served by HawkEye-G's round-robin (cyclic by pid).
    last_pid: u32,
    /// Bucket level the rotation is currently serving (rotation restarts
    /// when the global level changes).
    last_bucket: usize,
    /// Latest external steering decision (fleet hook API); the default is
    /// hands-off, so unsteered runs are bit-identical to pre-fleet builds.
    steer: Steering,
}

impl HawkEye {
    /// Creates the policy.
    pub fn new(cfg: HawkEyeConfig) -> Self {
        HawkEye {
            promo_budget: TokenBucket::new(cfg.promotions_per_sec),
            prezero: PrezeroDaemon::new(cfg.prezero_pages_per_sec, cfg.store_mode),
            bloat: BloatRecovery::new(
                cfg.bloat_high,
                cfg.bloat_low,
                cfg.bloat_scans_per_sec,
                cfg.dedup_min_zero,
            ),
            cfg,
            maps: BTreeMap::new(),
            measured: BTreeMap::new(),
            phase: SamplePhase::Idle,
            next_sample: cfg.sample_period,
            rr: 0,
            last_pid: 0,
            last_bucket: usize::MAX,
            steer: Steering::default(),
        }
    }

    /// The configured variant.
    pub fn variant(&self) -> Variant {
        self.cfg.variant
    }

    /// Read access to a process's access map (for the Fig. 4 example and
    /// diagnostics).
    pub fn access_map(&self, pid: u32) -> Option<&AccessMap> {
        self.maps.get(&pid)
    }

    /// The current MMU-overhead score used for ranking `pid`.
    pub fn overhead_score(&self, m: &Machine, pid: u32) -> f64 {
        match self.cfg.variant {
            Variant::Pmu => self.measured.get(&pid).copied().unwrap_or(0.0),
            Variant::G => self
                .maps
                .get(&pid)
                .map(|map| estimate_overhead(map, m.config().tlb.l2_entries))
                .unwrap_or(0.0),
        }
    }

    /// Zero pages recovered by bloat recovery so far.
    pub fn recovered_pages(&self) -> u64 {
        self.bloat.recovered_pages()
    }

    fn candidate_regions(m: &Machine, pid: u32) -> Vec<Hvpn> {
        let Some(p) = m.process(pid) else { return Vec::new() };
        let pt = p.space().page_table();
        pt.base_only_regions().filter(|h| p.space().region_promotable(*h)).collect()
    }

    fn arm_sampling(&mut self, m: &mut Machine) {
        for pid in m.running_pids() {
            for h in Self::candidate_regions(m, pid) {
                let p = m.process_mut(pid).expect("running");
                p.space_mut().clear_region_access(h);
            }
        }
    }

    fn read_samples(&mut self, m: &mut Machine) {
        let alpha = self.cfg.ema_alpha;
        for pid in m.running_pids() {
            let regions = Self::candidate_regions(m, pid);
            // Counter only: access-bit sampling reads PTE bits the hardware
            // maintains, so the model charges it no cycles (§3.3).
            m.metrics().add("scan.sampled_regions", regions.len() as u64);
            let map = self.maps.entry(pid).or_insert_with(|| AccessMap::new(alpha));
            for h in regions {
                let p = m.process_mut(pid).expect("running");
                let s = p.space_mut().sample_and_clear_access(h);
                map.update(h, s.accessed);
            }
            if self.cfg.variant == Variant::Pmu {
                let w = m.mmu_mut().sample_window(pid);
                let cur = w.mmu_overhead();
                let e = self.measured.entry(pid).or_insert(cur);
                *e = 0.5 * cur + 0.5 * *e;
            }
        }
    }

    fn eligible(m: &Machine, pid: u32, hvpn: Hvpn) -> bool {
        m.process(pid)
            .map(|p| {
                let pt = p.space().page_table();
                pt.huge_entry(hvpn).is_none()
                    && p.space().region_promotable(hvpn)
                    && pt.region_mapped_count(hvpn) > 0
            })
            .unwrap_or(false)
    }

    /// Whether the §3.5(2) starvation guard forbids more huge pages for
    /// `pid`.
    fn at_huge_cap(&self, m: &Machine, pid: u32) -> bool {
        match self.cfg.max_huge_per_process {
            None => false,
            Some(cap) => m
                .process(pid)
                .map(|p| p.space().huge_pages() >= cap)
                .unwrap_or(false),
        }
    }

    fn try_promote(&mut self, m: &mut Machine, pid: u32, hvpn: Hvpn) -> bool {
        if self.at_huge_cap(m, pid) {
            return false;
        }
        match m.promote(pid, hvpn) {
            Ok(_) => true,
            Err(PromoteError::NoContiguousMemory) => {
                m.run_compaction(self.cfg.compact_budget);
                m.promote(pid, hvpn).is_ok()
            }
            Err(_) => false,
        }
    }

    /// One HawkEye-G promotion: globally highest bucket, round-robin on
    /// ties. Returns false when nothing is promotable.
    fn promote_g(&mut self, m: &mut Machine) -> bool {
        for _attempt in 0..16 {
            // Highest non-empty bucket index across running processes.
            let mut best: Option<usize> = None;
            let mut holders: Vec<u32> = Vec::new();
            for pid in m.running_pids() {
                let Some(map) = self.maps.get(&pid) else { continue };
                let Some(idx) = map.highest_index() else { continue };
                match best {
                    Some(b) if idx < b => {}
                    Some(b) if idx == b => holders.push(pid),
                    _ => {
                        best = Some(idx);
                        holders = vec![pid];
                    }
                }
            }
            if holders.is_empty() {
                return false;
            }
            // Cyclic round-robin by pid among the tied holders, restarting
            // whenever the global bucket level changes — this interleaves
            // processes exactly as the Fig. 4 example (A1, B1, C1, C2, ...).
            if best != Some(self.last_bucket) {
                self.last_pid = 0;
                self.last_bucket = best.expect("non-empty holders imply a bucket");
            }
            let pid = holders
                .iter()
                .copied()
                .find(|p| *p > self.last_pid)
                .unwrap_or(holders[0]);
            self.last_pid = pid;
            let map = self.maps.get_mut(&pid).expect("holder has a map");
            let Some(hvpn) = map.pop_best(self.cfg.min_coverage) else {
                // Entire map below the coverage floor: drop it from
                // consideration this round by treating as non-promotable.
                // (pop_best leaves entries; avoid spinning by removing the
                // peeked head.)
                if let Some(h) = map.peek_best() {
                    map.remove(h);
                    continue;
                }
                return false;
            };
            if Self::eligible(m, pid, hvpn) && self.try_promote(m, pid, hvpn) {
                return true;
            }
            // Stale entry: try again with the next candidate.
        }
        false
    }

    /// One HawkEye-PMU promotion: neediest process by measured overhead,
    /// round-robin among processes within 1% of the top; stop entirely
    /// below the 2% threshold.
    fn promote_pmu(&mut self, m: &mut Machine) -> bool {
        for _attempt in 0..16 {
            let mut ranked: Vec<(u32, f64)> = m
                .running_pids()
                .into_iter()
                .map(|pid| (pid, self.measured.get(&pid).copied().unwrap_or(0.0)))
                .collect();
            ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite"));
            let Some(&(_, top)) = ranked.first() else { return false };
            if top < self.cfg.pmu_stop_threshold {
                return false;
            }
            let tied: Vec<u32> = ranked
                .iter()
                .filter(|(_, o)| top - o < 0.01)
                .map(|(pid, _)| *pid)
                .collect();
            let pid = tied[(self.rr as usize) % tied.len()];
            let Some(map) = self.maps.get_mut(&pid) else {
                self.rr = self.rr.wrapping_add(1);
                continue;
            };
            let Some(hvpn) = map.pop_best(self.cfg.min_coverage) else {
                // Nothing hot to promote for the neediest process; damp
                // its score so others get a chance.
                self.measured.insert(pid, 0.0);
                continue;
            };
            self.rr = self.rr.wrapping_add(1);
            if Self::eligible(m, pid, hvpn) && self.try_promote(m, pid, hvpn) {
                return true;
            }
        }
        false
    }
}

impl Default for HawkEye {
    fn default() -> Self {
        Self::new(HawkEyeConfig::default())
    }
}

impl HugePagePolicy for HawkEye {
    fn name(&self) -> &str {
        if !self.cfg.huge_faults {
            return "HawkEye-4KB";
        }
        match self.cfg.variant {
            Variant::G => "HawkEye-G",
            Variant::Pmu => "HawkEye-PMU",
        }
    }

    fn on_fault(&mut self, m: &mut Machine, pid: u32, _vpn: Vpn) -> FaultAction {
        // Aggressive: huge at first fault; the pre-zeroed pool keeps it
        // cheap and bloat recovery keeps it safe.
        if self.cfg.huge_faults && !self.at_huge_cap(m, pid) {
            FaultAction::MapHuge
        } else {
            FaultAction::MapBase
        }
    }

    fn on_tick(&mut self, m: &mut Machine) {
        let now = m.now();
        // 0. Proactive compaction (kcompactd): keep contiguity available
        // so fault-time huge allocations succeed even after fragmentation.
        if m.fmfi() > 0.6 && m.pm().free_pages() > 1024 {
            m.run_compaction(self.cfg.compact_budget);
        }
        // 1. Async pre-zeroing.
        self.prezero.tick(m, now);
        // 2. Two-phase access-coverage sampling.
        match self.phase {
            SamplePhase::Idle if now >= self.next_sample => {
                self.arm_sampling(m);
                self.phase = SamplePhase::Armed { since: now };
            }
            SamplePhase::Armed { since } if now.saturating_sub(since) >= self.cfg.sample_window => {
                self.read_samples(m);
                self.phase = SamplePhase::Idle;
                self.next_sample = since + self.cfg.sample_period;
            }
            _ => {}
        }
        // 3. Promotion. External steering (fleet hook API) scales the
        // token cost per promotion — throttle 0.5 halves the effective
        // khugepaged rate, 0.0 pauses it — and may cap promotions per
        // tick. The default steering leaves both alone.
        self.promo_budget.refill(now);
        let throttle = self.steer.promotion_throttle.clamp(0.0, 1.0);
        let mut this_tick = 0u64;
        while throttle > 0.0
            && self.steer.khugepaged_budget.is_none_or(|cap| this_tick < cap)
            && self.promo_budget.take(1.0 / throttle)
        {
            let promoted = match self.cfg.variant {
                Variant::G => self.promote_g(m),
                Variant::Pmu => self.promote_pmu(m),
            };
            if !promoted {
                break;
            }
            this_tick += 1;
        }
        // 4. Bloat recovery, scanning lowest-overhead processes first;
        // steered demotion pressure lowers its watermarks.
        let scores: BTreeMap<u32, f64> =
            m.pids().iter().map(|pid| (*pid, self.overhead_score(m, *pid))).collect();
        self.bloat.tick_pressed(m, now, self.steer.demotion_pressure, |pid| {
            scores.get(&pid).copied().unwrap_or(0.0)
        });
    }

    fn on_exit(&mut self, _m: &mut Machine, pid: u32) {
        self.maps.remove(&pid);
        self.measured.remove(&pid);
        self.bloat.forget(pid);
    }

    fn on_steer(&mut self, m: &mut Machine, s: &Steering) {
        self.steer = *s;
        m.metrics().add("steer.decisions", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{workload::script, KernelConfig, MemOp, Simulator};
    use hawkeye_vm::VmaKind;

    /// Touch a range, then keep re-touching a hot subrange forever-ish.
    fn hot_tail_workload(total_regions: u64, hot_regions: u64) -> Box<dyn hawkeye_kernel::Workload> {
        hot_tail_n(total_regions, hot_regions, 2000)
    }

    fn hot_tail_n(
        total_regions: u64,
        hot_regions: u64,
        iters: u64,
    ) -> Box<dyn hawkeye_kernel::Workload> {
        let pages = total_regions * 512;
        let hot_start = (total_regions - hot_regions) * 512;
        let mut ops = vec![
            MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
            MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 0, stride: 1 , repeats: 1},
        ];
        for _ in 0..iters {
            ops.push(MemOp::TouchRange {
                start: Vpn(hot_start),
                pages: hot_regions * 512,
                write: false,
                think: 80,
                stride: 1,
                repeats: 1,
            });
        }
        script("hot-tail", ops)
    }

    fn fragmented_sim(policy: HawkEye) -> Simulator {
        let mut cfg = KernelConfig::small();
        cfg.frames = 128 * 1024; // 512 MiB
        let mut sim = Simulator::new(cfg, Box::new(policy));
        sim.machine_mut().fragment(1.0, 0.55, 9);
        sim
    }

    #[test]
    fn faults_prefer_huge_pages_on_pristine_memory() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(HawkEye::default()));
        let pid = sim.spawn(script(
            "w",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 1024, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 1024, write: true, think: 0, stride: 1 , repeats: 1},
            ],
        ));
        sim.run_for(Cycles::from_millis(50));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().huge_faults, 2);
    }

    #[test]
    fn promotes_hot_high_va_regions_first() {
        // The headline §3.3 behaviour: hot regions in HIGH VAs are
        // promoted before cold low-VA regions — the opposite of the
        // sequential scans in Linux/Ingens.
        let mut sim = fragmented_sim(HawkEye::default());
        let pid = sim.spawn(hot_tail_workload(16, 2));
        sim.run_while(|m| m.stats().promotions < 2);
        let p = sim.machine().process(pid).unwrap();
        let pt = p.space().page_table();
        let promoted: Vec<u64> =
            pt.huge_mappings().map(|(h, _)| h.0).collect();
        assert!(
            promoted.iter().all(|h| *h >= 14),
            "hot tail regions (14,15) must go first, got {promoted:?}"
        );
    }

    #[test]
    fn pmu_variant_promotes_hot_regions_too() {
        let mut sim = fragmented_sim(HawkEye::new(HawkEyeConfig::pmu()));
        let pid = sim.spawn(hot_tail_workload(16, 2));
        sim.run_while(|m| m.stats().promotions < 2);
        let p = sim.machine().process(pid).unwrap();
        let promoted: Vec<u64> =
            p.space().page_table().huge_mappings().map(|(h, _)| h.0).collect();
        assert!(promoted.iter().all(|h| *h >= 14), "{promoted:?}");
    }

    #[test]
    fn fig4_round_robin_order_across_processes() {
        // Three "processes" with access maps shaped like Fig. 4: the
        // promotion order must interleave processes holding the globally
        // highest bucket (A1,B1,C1,C2,B2,...-style), not drain one process.
        // Disable fault-time huge pages so huge coverage can only come
        // from the promotion path this test is about.
        let fast = HawkEyeConfig {
            sample_period: Cycles::from_millis(40),
            sample_window: Cycles::from_millis(10),
            promotions_per_sec: 400.0,
            huge_faults: false,
            ..Default::default()
        };
        let mut sim = fragmented_sim(HawkEye::new(fast));
        let mk = || hot_tail_n(8, 2, 1_000_000); // effectively endless
        let a = sim.spawn(mk());
        let b = sim.spawn(mk());
        let c = sim.spawn(mk());
        sim.run_while(|m| m.stats().promotions < 6 && m.now() < Cycles::from_secs(5.0));
        assert!(sim.machine().stats().promotions >= 6, "{:?}", sim.machine().stats());
        let counts: Vec<u64> = [a, b, c]
            .iter()
            .map(|pid| sim.machine().process(*pid).unwrap().space().huge_pages())
            .collect();
        assert!(
            counts.iter().all(|c| *c >= 1),
            "round-robin must reach every process: {counts:?}"
        );
    }

    #[test]
    fn pmu_stops_below_threshold() {
        // A workload with a tiny working set (fits in the TLB): measured
        // overhead stays < 2%, so HawkEye-PMU should promote nothing.
        let mut sim = fragmented_sim(HawkEye::new(HawkEyeConfig::pmu()));
        let mut ops = vec![MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon }];
        for _ in 0..500 {
            ops.push(MemOp::TouchRange {
                start: Vpn(0),
                pages: 16,
                write: true,
                think: 100,
                stride: 1,
                repeats: 1,
            });
        }
        let pid = sim.spawn(script("tiny", ops));
        sim.run_for(Cycles::from_secs(3.0));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 0, "no promotion below the 2% threshold");
    }

    #[test]
    fn steering_throttle_zero_pauses_promotion() {
        // Same workload that promotes under the default policy, but the
        // fleet hook throttled promotion to 0: khugepaged must stay idle.
        let mut sim = fragmented_sim(HawkEye::default());
        let _pid = sim.spawn(hot_tail_n(16, 2, 200));
        sim.steer(&Steering { promotion_throttle: 0.0, ..Steering::default() });
        sim.run_for(Cycles::from_secs(2.0));
        assert_eq!(sim.machine().stats().promotions, 0, "{:?}", sim.machine().stats());
    }

    #[test]
    fn steered_demotion_pressure_recovers_below_watermark() {
        // Sparse huge mappings at ~42% utilization: far below the 85%
        // bloat watermark, so unsteered HawkEye leaves them alone — but a
        // hook applying full demotion pressure recovers the zero pages.
        let mk = || {
            let mut cfg = KernelConfig::small();
            cfg.frames = 24 * 1024; // 96 MiB
            let mut ops =
                vec![MemOp::Mmap { start: Vpn(0), pages: 20 * 512, kind: VmaKind::Anon }];
            for r in 0..20 {
                ops.push(MemOp::Touch { vpn: Vpn(r * 512), write: true, repeats: 1, think: 0 });
            }
            ops.push(MemOp::Compute { cycles: 5_000_000_000 });
            let mut sim = Simulator::new(cfg, Box::new(HawkEye::default()));
            sim.spawn(script("sparse", ops));
            sim
        };
        let mut unsteered = mk();
        unsteered.run_for(Cycles::from_secs(2.0));
        assert_eq!(unsteered.machine().stats().deduped_zero_pages, 0);
        let mut steered = mk();
        steered.steer(&Steering { demotion_pressure: 1.0, ..Steering::default() });
        steered.run_for(Cycles::from_secs(2.0));
        assert!(
            steered.machine().stats().deduped_zero_pages > 0,
            "{:?}",
            steered.machine().stats()
        );
    }

    #[test]
    fn bloat_recovery_fires_under_pressure() {
        let mut cfg = KernelConfig::small();
        cfg.frames = 24 * 1024; // 96 MiB
        let mut sim = Simulator::new(cfg, Box::new(HawkEye::default()));
        // Sparse writer: touches 1 page per region over 40 regions; huge
        // faults inflate RSS to 40 * 2 MiB = 80 MiB > 85% of 96 MiB.
        let mut ops = vec![MemOp::Mmap { start: Vpn(0), pages: 41 * 512, kind: VmaKind::Anon }];
        for r in 0..41 {
            ops.push(MemOp::Touch { vpn: Vpn(r * 512), write: true, repeats: 1, think: 0 });
        }
        ops.push(MemOp::Compute { cycles: 10_000_000_000 });
        let pid = sim.spawn(script("sparse", ops));
        sim.run_for(Cycles::from_secs(3.0));
        let m = sim.machine();
        assert!(m.stats().deduped_zero_pages > 0, "bloat recovery must fire: {:?}", m.stats());
        assert!(m.utilization() < 0.85, "pressure relieved: {}", m.utilization());
        let p = m.process(pid).unwrap();
        assert!(p.space().huge_pages() < 41);
        m.pm().check_invariants();
    }

    #[test]
    fn prezero_keeps_pool_stocked() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(HawkEye::default()));
        // Allocate, dirty, release; the daemon should re-stock zeroed pages.
        let _pid = sim.spawn(script(
            "churn",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 4096, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 4096, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Madvise { start: Vpn(0), pages: 4096 },
                MemOp::Compute { cycles: 3_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_secs(2.0));
        let m = sim.machine();
        assert!(m.stats().prezeroed_pages >= 4096, "{:?}", m.stats());
        assert_eq!(m.pm().nonzeroed_free_pages(), 0, "pool fully re-zeroed");
    }

    #[test]
    fn starvation_guard_caps_huge_pages() {
        let capped = HawkEyeConfig { max_huge_per_process: Some(2), ..Default::default() };
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(HawkEye::new(capped)));
        let pid = sim.spawn(script(
            "big",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 8 * 512, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 8 * 512, write: true, think: 0, stride: 1, repeats: 1 },
                MemOp::Compute { cycles: 2_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_secs(1.0));
        let p = sim.machine().process(pid).unwrap();
        assert!(p.space().huge_pages() <= 2, "cap violated: {}", p.space().huge_pages());
        // Uncapped control maps everything hugely.
        let mut sim2 = Simulator::new(KernelConfig::small(), Box::new(HawkEye::default()));
        let pid2 = sim2.spawn(script(
            "big",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 8 * 512, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 8 * 512, write: true, think: 0, stride: 1, repeats: 1 },
            ],
        ));
        sim2.run();
        assert_eq!(sim2.machine().process(pid2).unwrap().stats().huge_faults, 8);
    }

    use hawkeye_metrics::Cycles;
}
