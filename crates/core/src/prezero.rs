//! The async pre-zeroing daemon (§3.1).
//!
//! A rate-limited background thread transfers pages from the buddy
//! allocator's non-zero free lists to the zero lists, clearing them with
//! non-temporal stores so the shared LLC is not polluted (Fig. 10
//! quantifies the temporal-store alternative). Because allocation prefers
//! the zero lists, fault-time zeroing — 97 % of a 2 MB fault's latency —
//! disappears in the common case.

use hawkeye_kernel::Machine;
use hawkeye_metrics::Cycles;
use hawkeye_policies::TokenBucket;
use hawkeye_tlb::StoreMode;

/// The pre-zeroing daemon state.
///
/// # Examples
///
/// ```
/// use hawkeye_core::PrezeroDaemon;
/// use hawkeye_tlb::StoreMode;
///
/// let d = PrezeroDaemon::new(10_000.0, StoreMode::NonTemporal);
/// assert_eq!(d.pages_zeroed(), 0);
/// ```
#[derive(Debug)]
pub struct PrezeroDaemon {
    budget: TokenBucket,
    mode: StoreMode,
    pages_zeroed: u64,
}

impl PrezeroDaemon {
    /// Creates a daemon zeroing at most `pages_per_sec`, using `mode`
    /// stores.
    pub fn new(pages_per_sec: f64, mode: StoreMode) -> Self {
        PrezeroDaemon {
            budget: TokenBucket::new(pages_per_sec).with_cap(pages_per_sec / 10.0),
            mode,
            pages_zeroed: 0,
        }
    }

    /// The store flavour in use (drives the Fig. 10 interference model).
    pub fn store_mode(&self) -> StoreMode {
        self.mode
    }

    /// Total pages zeroed so far.
    pub fn pages_zeroed(&self) -> u64 {
        self.pages_zeroed
    }

    /// The daemon's current zeroing rate in bytes per simulated second
    /// (for interference accounting).
    pub fn rate_bytes_per_sec(&self, pages_per_sec: f64) -> f64 {
        pages_per_sec * 4096.0
    }

    /// Runs one tick at simulated time `now`: zeroes up to the accrued
    /// budget. Returns pages zeroed this tick.
    pub fn tick(&mut self, m: &mut Machine, now: Cycles) -> u64 {
        self.budget.refill(now);
        let budget = self.budget.available().floor();
        if budget < 1.0 {
            return 0;
        }
        let zeroed = m.prezero(budget as u64);
        let _ = self.budget.take(zeroed as f64);
        self.pages_zeroed += zeroed;
        zeroed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::KernelConfig;
    use hawkeye_mem::{AllocPref, PageContent, Pfn, MAX_ORDER};

    fn dirty_machine() -> Machine {
        let mut m = Machine::new(KernelConfig::small());
        // Dirty a chunk of free memory.
        let a = m.pm_mut().alloc(MAX_ORDER, AllocPref::Zeroed).unwrap();
        for i in 0..MAX_ORDER.pages() {
            m.pm_mut().frame_mut(Pfn(a.pfn.0 + i)).set_content(PageContent::non_zero(3));
        }
        m.pm_mut().free(a.pfn, a.order);
        m
    }

    #[test]
    fn rate_limit_bounds_work_per_tick() {
        let mut m = dirty_machine();
        let mut d = PrezeroDaemon::new(1000.0, StoreMode::NonTemporal);
        // 100 ms of budget = 100 pages.
        let z = d.tick(&mut m, Cycles::from_millis(100));
        assert!(z <= 100, "{z}");
        assert!(z > 0);
        assert_eq!(d.pages_zeroed(), z);
    }

    #[test]
    fn converges_and_then_idles() {
        let mut m = dirty_machine();
        let mut d = PrezeroDaemon::new(1e9, StoreMode::NonTemporal);
        let z = d.tick(&mut m, Cycles::from_secs(1.0));
        assert_eq!(z, MAX_ORDER.pages());
        assert_eq!(m.pm().nonzeroed_free_pages(), 0);
        let z2 = d.tick(&mut m, Cycles::from_secs(2.0));
        assert_eq!(z2, 0, "nothing left to zero");
    }

    #[test]
    fn fractional_budget_waits() {
        let mut m = dirty_machine();
        let mut d = PrezeroDaemon::new(10.0, StoreMode::Temporal);
        assert_eq!(d.tick(&mut m, Cycles::from_millis(50)), 0, "0.5 tokens: wait");
        assert_eq!(d.store_mode(), StoreMode::Temporal);
        assert!(d.tick(&mut m, Cycles::from_millis(200)) >= 1);
    }

    #[test]
    fn stats_flow_to_kernel() {
        let mut m = dirty_machine();
        let mut d = PrezeroDaemon::new(1e9, StoreMode::NonTemporal);
        d.tick(&mut m, Cycles::from_secs(1.0));
        assert_eq!(m.stats().prezeroed_pages, MAX_ORDER.pages());
        assert!(m.stats().daemon_cycles > Cycles::ZERO);
    }
}
