//! Bloat recovery (§3.2).
//!
//! When allocated memory crosses the **high** watermark (85 %), a
//! rate-limited daemon activates and runs until allocation falls below the
//! **low** watermark (70 %). Each step it scans huge pages of the process
//! with the *lowest* estimated MMU overhead — the process that needs huge
//! pages least — looking for zero-filled base pages; huge pages with at
//! least `min_zero` zero-filled constituents are demoted and their zero
//! pages de-duplicated against the canonical zero page (returning
//! pre-zeroed frames to the allocator).
//!
//! Because a per-page scan stops at the first non-zero byte (≈ 10 bytes
//! for in-use pages, Fig. 3), the daemon's cost scales with the amount of
//! *bloat*, not with total RSS.

use hawkeye_kernel::{DedupOutcome, Machine};
use hawkeye_metrics::Cycles;
use hawkeye_policies::TokenBucket;
use hawkeye_vm::Hvpn;
use std::collections::BTreeMap;

/// The bloat-recovery daemon.
///
/// # Examples
///
/// ```
/// use hawkeye_core::BloatRecovery;
///
/// let b = BloatRecovery::new(0.85, 0.70, 100.0, 64);
/// assert!(!b.is_active());
/// ```
#[derive(Debug)]
pub struct BloatRecovery {
    high: f64,
    low: f64,
    min_zero: u32,
    budget: TokenBucket,
    active: bool,
    /// Per-process scan cursors over huge-mapped regions.
    cursors: BTreeMap<u32, u64>,
    recovered_pages: u64,
}

impl BloatRecovery {
    /// Creates the daemon with the given watermarks, scan rate (huge
    /// pages per simulated second) and de-dup threshold.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < low < high <= 1`.
    pub fn new(high: f64, low: f64, scans_per_sec: f64, min_zero: u32) -> Self {
        assert!(0.0 < low && low < high && high <= 1.0, "bad watermarks");
        BloatRecovery {
            high,
            low,
            min_zero,
            budget: TokenBucket::new(scans_per_sec),
            active: false,
            cursors: BTreeMap::new(),
            recovered_pages: 0,
        }
    }

    /// Whether the daemon is currently between the watermarks and working.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Zero pages de-duplicated so far.
    pub fn recovered_pages(&self) -> u64 {
        self.recovered_pages
    }

    /// Runs one tick at time `now`; `overhead_of(pid)` ranks processes
    /// (lowest scanned first). Returns zero pages recovered this tick.
    pub fn tick(
        &mut self,
        m: &mut Machine,
        now: Cycles,
        overhead_of: impl FnMut(u32) -> f64,
    ) -> u64 {
        self.tick_pressed(m, now, 0.0, overhead_of)
    }

    /// [`BloatRecovery::tick`] under external demotion pressure
    /// `0.0 ..= 1.0` (the fleet hook API's knob): pressure scales both
    /// watermarks down by `1 - pressure`, so `0.0` is the paper's
    /// behaviour and `1.0` keeps the daemon scanning regardless of
    /// utilization. Returns zero pages recovered this tick.
    pub fn tick_pressed(
        &mut self,
        m: &mut Machine,
        now: Cycles,
        pressure: f64,
        mut overhead_of: impl FnMut(u32) -> f64,
    ) -> u64 {
        let scale = 1.0 - pressure.clamp(0.0, 1.0);
        let (high, low) = (self.high * scale, self.low * scale);
        let util = m.utilization();
        if !self.active && util >= high {
            self.active = true;
        }
        if self.active && util <= low {
            self.active = false;
            self.cursors.clear();
        }
        if !self.active {
            self.budget.refill(now); // keep the bucket current but idle
            return 0;
        }
        self.budget.refill(now);
        let mut recovered = 0;
        // Processes are scanned lowest-estimated-overhead *first* (§3.2),
        // but each gets at most one full pass per tick so a huge-page-rich
        // idle process cannot starve the scan of the actually-bloated one.
        let mut pids: Vec<u32> = m
            .running_pids()
            .into_iter()
            .filter(|pid| m.process(*pid).map(|p| p.space().huge_pages() > 0).unwrap_or(false))
            .collect();
        pids.sort_by(|a, b| {
            overhead_of(*a).partial_cmp(&overhead_of(*b)).expect("finite overheads")
        });
        'outer: for pid in pids {
            let pass = m.process(pid).map(|p| p.space().huge_pages()).unwrap_or(0);
            for _ in 0..pass {
                if m.utilization() <= low {
                    self.active = false;
                    self.cursors.clear();
                    break 'outer;
                }
                if !self.budget.take(1.0) {
                    break 'outer;
                }
                let Some(hvpn) = self.next_huge_region(m, pid) else { break };
                if let Some(DedupOutcome::Deduped { zero_pages, .. }) =
                    m.dedup_zero_pages(pid, hvpn, self.min_zero)
                {
                    recovered += zero_pages as u64;
                }
            }
        }
        self.recovered_pages += recovered;
        m.metrics().add("scan.bloat_recovered_pages", recovered);
        recovered
    }

    /// Next huge-mapped region of `pid` at or after its cursor, wrapping
    /// once.
    fn next_huge_region(&mut self, m: &Machine, pid: u32) -> Option<Hvpn> {
        let p = m.process(pid)?;
        let cursor = self.cursors.get(&pid).copied().unwrap_or(0);
        let regions: Vec<Hvpn> = p.space().page_table().huge_mappings().map(|(h, _)| h).collect();
        let found = regions
            .iter()
            .copied()
            .find(|h| h.0 >= cursor)
            .or_else(|| regions.first().copied());
        if let Some(h) = found {
            self.cursors.insert(pid, h.0 + 1);
        }
        found
    }

    /// Forgets an exited process's cursor.
    pub fn forget(&mut self, pid: u32) {
        self.cursors.remove(&pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{workload::script, KernelConfig};
    use hawkeye_mem::{PageContent, Pfn};
    use hawkeye_vm::{VmaKind, Vpn};

    /// A machine at ~94% utilization where one process holds bloated huge
    /// pages (only the first `used` pages of each region are non-zero).
    fn bloated_machine(used: u64) -> (Machine, u32) {
        let mut cfg = KernelConfig::small();
        cfg.frames = 16 * 1024; // 64 MiB
        let mut m = Machine::new(cfg);
        let pid = m.spawn(script("w", vec![]));
        m.process_mut(pid).unwrap().space_mut().mmap(Vpn(0), 30 * 512, VmaKind::Anon).unwrap();
        for r in 0..30u64 {
            m.fault_map_huge(pid, Vpn(r * 512)).unwrap();
            let pfn = m.process(pid).unwrap().space().translate(Vpn(r * 512)).unwrap().pfn;
            for i in 0..used {
                m.pm_mut().frame_mut(Pfn(pfn.0 + i)).set_content(PageContent::non_zero(9));
            }
        }
        (m, pid)
    }

    #[test]
    fn inactive_below_high_watermark() {
        let (mut m, _) = bloated_machine(100);
        // Utilization ~94%... shrink by freeing nothing; instead use high
        // watermark above current utilization.
        let mut b = BloatRecovery::new(0.99, 0.70, 1000.0, 64);
        let r = b.tick(&mut m, Cycles::from_secs(1.0), |_| 0.0);
        assert_eq!(r, 0);
        assert!(!b.is_active());
    }

    #[test]
    fn recovers_bloat_until_low_watermark() {
        let (mut m, pid) = bloated_machine(64);
        let util0 = m.utilization();
        assert!(util0 > 0.85, "setup: pressure ({util0})");
        let mut b = BloatRecovery::new(0.85, 0.70, 1e6, 64);
        let mut total = 0;
        for s in 1..=20 {
            total += b.tick(&mut m, Cycles::from_secs(s as f64), |_| 0.0);
        }
        assert!(total > 0, "recovered nothing");
        assert!(m.utilization() <= 0.70 + 0.05, "util {}", m.utilization());
        assert!(!b.is_active(), "deactivates at the low watermark");
        // The process's touched data is intact: zero-cow + base mappings.
        let p = m.process(pid).unwrap();
        assert!(p.space().huge_pages() < 30);
        m.pm().check_invariants();
    }

    #[test]
    fn skips_well_utilized_huge_pages() {
        // Every page non-zero: nothing to recover, huge pages stay.
        let (mut m, pid) = bloated_machine(512);
        let mut b = BloatRecovery::new(0.85, 0.70, 1e6, 64);
        let mut total = 0;
        for s in 1..=5 {
            total += b.tick(&mut m, Cycles::from_secs(s as f64), |_| 0.0);
        }
        assert_eq!(total, 0);
        assert_eq!(m.process(pid).unwrap().space().huge_pages(), 30);
        assert!(b.is_active(), "still under pressure, still trying");
    }

    #[test]
    fn scans_lowest_overhead_process_first() {
        let (mut m, pid1) = bloated_machine(64);
        // Second process, also with a bloated huge page.
        let pid2 = m.spawn(script("w2", vec![]));
        m.process_mut(pid2)
            .unwrap()
            .space_mut()
            .mmap(Vpn(0), 512, VmaKind::Anon)
            .unwrap();
        m.fault_map_huge(pid2, Vpn(0)).unwrap();
        let mut b = BloatRecovery::new(0.85, 0.70, 1.0, 64);
        // Rate of 1 scan/sec: the single scan must hit pid2 (lower
        // overhead per our ranking closure).
        let overheads = move |pid: u32| if pid == pid1 { 0.9 } else { 0.1 };
        b.tick(&mut m, Cycles::from_secs(1.0), overheads);
        assert_eq!(m.process(pid2).unwrap().space().huge_pages(), 0, "pid2 scanned first");
        assert_eq!(m.process(pid1).unwrap().space().huge_pages(), 30);
    }

    #[test]
    #[should_panic(expected = "bad watermarks")]
    fn inverted_watermarks_rejected() {
        let _ = BloatRecovery::new(0.5, 0.9, 1.0, 1);
    }
}
