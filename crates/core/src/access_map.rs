//! The `access_map`: HawkEye's per-process promotion index (§3.3).
//!
//! Each huge-page-sized region is tracked with an exponential moving
//! average of its *access-coverage* — how many of its 512 base pages were
//! touched in the last sampling window. Regions are filed into
//! [`BUCKETS`] = 10 buckets by EMA (0–49 → bucket 0, 50–99 → bucket 1,
//! …); rising regions enter at the **head** of their bucket, falling
//! regions at the **tail**, so each bucket is internally ordered by
//! recency. Promotions pop from the highest non-empty bucket, head first
//! — capturing frequency *and* recency without any VA-order bias.

use hawkeye_vm::Hvpn;
use std::collections::{BTreeMap, VecDeque};

/// Number of coverage buckets (the paper's prototype uses ten).
pub const BUCKETS: usize = 10;

#[derive(Debug, Clone, Copy)]
struct RegionState {
    ema: f64,
    bucket: usize,
}

/// Per-process access-coverage index.
///
/// # Examples
///
/// ```
/// use hawkeye_core::AccessMap;
/// use hawkeye_vm::Hvpn;
///
/// let mut map = AccessMap::new(0.5);
/// map.update(Hvpn(1), 480); // hot region
/// map.update(Hvpn(2), 30);  // cold region
/// assert_eq!(map.pop_best(0.0), Some(Hvpn(1)));
/// assert_eq!(map.pop_best(0.0), Some(Hvpn(2)));
/// assert_eq!(map.pop_best(0.0), None);
/// ```
#[derive(Debug, Clone)]
pub struct AccessMap {
    alpha: f64,
    regions: BTreeMap<Hvpn, RegionState>,
    buckets: [VecDeque<Hvpn>; BUCKETS],
}

impl AccessMap {
    /// Creates a map whose EMA gives weight `alpha` to the newest sample.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < alpha <= 1.0`.
    pub fn new(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha <= 1.0, "ema weight out of range");
        AccessMap { alpha, regions: BTreeMap::new(), buckets: Default::default() }
    }

    /// Number of tracked regions.
    pub fn len(&self) -> usize {
        self.regions.len()
    }

    /// Whether no regions are tracked.
    pub fn is_empty(&self) -> bool {
        self.regions.is_empty()
    }

    fn bucket_for(ema: f64) -> usize {
        ((ema / 50.0) as usize).min(BUCKETS - 1)
    }

    /// Feeds one coverage sample (0–512 accessed base pages) for a region,
    /// updating its EMA and repositioning it.
    pub fn update(&mut self, hvpn: Hvpn, coverage: u32) {
        let coverage = coverage.min(512) as f64;
        match self.regions.get_mut(&hvpn) {
            Some(s) => {
                let new_ema = self.alpha * coverage + (1.0 - self.alpha) * s.ema;
                let new_bucket = Self::bucket_for(new_ema);
                let old_bucket = s.bucket;
                s.ema = new_ema;
                if new_bucket != old_bucket {
                    s.bucket = new_bucket;
                    let rising = new_bucket > old_bucket;
                    self.buckets[old_bucket].retain(|h| *h != hvpn);
                    if rising {
                        self.buckets[new_bucket].push_front(hvpn);
                    } else {
                        self.buckets[new_bucket].push_back(hvpn);
                    }
                }
            }
            None => {
                let ema = self.alpha * coverage; // EMA from a zero prior
                let bucket = Self::bucket_for(ema);
                self.regions.insert(hvpn, RegionState { ema, bucket });
                self.buckets[bucket].push_front(hvpn);
            }
        }
    }

    /// The region's current EMA coverage, if tracked.
    pub fn ema(&self, hvpn: Hvpn) -> Option<f64> {
        self.regions.get(&hvpn).map(|s| s.ema)
    }

    /// Index of the highest non-empty bucket.
    pub fn highest_index(&self) -> Option<usize> {
        (0..BUCKETS).rev().find(|i| !self.buckets[*i].is_empty())
    }

    /// Peeks the head region of the highest non-empty bucket.
    pub fn peek_best(&self) -> Option<Hvpn> {
        self.highest_index().and_then(|i| self.buckets[i].front().copied())
    }

    /// Pops the most promotion-worthy region: highest bucket, head first.
    /// Regions whose EMA is below `min_coverage` are not returned (they
    /// stay tracked).
    pub fn pop_best(&mut self, min_coverage: f64) -> Option<Hvpn> {
        for i in (0..BUCKETS).rev() {
            // First entry in this bucket meeting the floor, if any.
            let pos = self.buckets[i].iter().position(|h| self.regions[h].ema >= min_coverage);
            if let Some(pos) = pos {
                let hvpn = self.buckets[i].remove(pos).expect("position valid");
                self.regions.remove(&hvpn);
                return Some(hvpn);
            }
        }
        None
    }

    /// Removes a region (promoted, unmapped, or process exit).
    pub fn remove(&mut self, hvpn: Hvpn) {
        if let Some(s) = self.regions.remove(&hvpn) {
            self.buckets[s.bucket].retain(|h| *h != hvpn);
        }
    }

    /// Iterates tracked regions and their EMAs (VA order).
    pub fn iter(&self) -> impl Iterator<Item = (Hvpn, f64)> + '_ {
        self.regions.iter().map(|(h, s)| (*h, s.ema))
    }

    /// Sum of EMA coverage across all tracked regions (the G-variant's
    /// raw TLB-pressure signal).
    pub fn total_coverage(&self) -> f64 {
        self.regions.values().map(|s| s.ema).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_match_paper() {
        assert_eq!(AccessMap::bucket_for(0.0), 0);
        assert_eq!(AccessMap::bucket_for(49.9), 0);
        assert_eq!(AccessMap::bucket_for(50.0), 1);
        assert_eq!(AccessMap::bucket_for(99.0), 1);
        assert_eq!(AccessMap::bucket_for(449.0), 8);
        assert_eq!(AccessMap::bucket_for(450.0), 9);
        assert_eq!(AccessMap::bucket_for(512.0), 9, "clamped to the top bucket");
    }

    #[test]
    fn ema_smooths_samples() {
        let mut m = AccessMap::new(0.5);
        m.update(Hvpn(1), 512);
        assert_eq!(m.ema(Hvpn(1)), Some(256.0));
        m.update(Hvpn(1), 512);
        assert_eq!(m.ema(Hvpn(1)), Some(384.0));
        m.update(Hvpn(1), 0);
        assert_eq!(m.ema(Hvpn(1)), Some(192.0));
    }

    #[test]
    fn pop_orders_by_bucket_then_recency() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(10), 480); // bucket 9
        m.update(Hvpn(20), 480); // bucket 9, more recent -> head
        m.update(Hvpn(30), 200); // bucket 4
        assert_eq!(m.pop_best(0.0), Some(Hvpn(20)));
        assert_eq!(m.pop_best(0.0), Some(Hvpn(10)));
        assert_eq!(m.pop_best(0.0), Some(Hvpn(30)));
        assert!(m.is_empty());
    }

    #[test]
    fn falling_regions_requeue_at_tail() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(1), 200); // bucket 4
        m.update(Hvpn(2), 480); // bucket 9
        m.update(Hvpn(2), 210); // falls to bucket 4 -> tail (behind 1)
        assert_eq!(m.pop_best(0.0), Some(Hvpn(1)));
        assert_eq!(m.pop_best(0.0), Some(Hvpn(2)));
    }

    #[test]
    fn rising_regions_requeue_at_head() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(1), 200); // bucket 4
        m.update(Hvpn(2), 30); // bucket 0
        m.update(Hvpn(2), 230); // rises to bucket 4 -> head (before 1)
        assert_eq!(m.pop_best(0.0), Some(Hvpn(2)));
        assert_eq!(m.pop_best(0.0), Some(Hvpn(1)));
    }

    #[test]
    fn min_coverage_floor_hides_cold_regions() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(1), 0);
        assert_eq!(m.pop_best(1.0), None);
        assert_eq!(m.len(), 1, "still tracked");
        m.update(Hvpn(1), 40);
        assert_eq!(m.pop_best(1.0), Some(Hvpn(1)));
    }

    #[test]
    fn remove_drops_from_bucket() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(1), 100);
        m.remove(Hvpn(1));
        assert!(m.is_empty());
        assert_eq!(m.pop_best(0.0), None);
        assert_eq!(m.highest_index(), None);
    }

    #[test]
    fn total_coverage_sums_emas() {
        let mut m = AccessMap::new(1.0);
        m.update(Hvpn(1), 100);
        m.update(Hvpn(2), 50);
        assert_eq!(m.total_coverage(), 150.0);
    }

    #[test]
    #[should_panic(expected = "ema weight")]
    fn zero_alpha_rejected() {
        let _ = AccessMap::new(0.0);
    }
}
