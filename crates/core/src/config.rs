//! HawkEye configuration.

use hawkeye_metrics::Cycles;
use hawkeye_tlb::StoreMode;

/// Which MMU-overhead source drives promotion ordering (§2.4, §3.4).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Variant {
    /// Estimate overheads from access-coverage (portable; the paper's
    /// HawkEye-G).
    #[default]
    G,
    /// Measure overheads with hardware performance counters (Table 4; the
    /// paper's HawkEye-PMU).
    Pmu,
}

/// Tunables of the HawkEye policy.
///
/// The paper's wall-clock periods (30 s sampling with 1 s access-bit
/// windows) are scaled down ~500× by default to match the simulator's
/// compressed timescales (whole experiments last seconds rather than
/// hours); every experiment in the bench harness uses the same scaling
/// for every policy, so comparisons are preserved.
#[derive(Debug, Clone, Copy)]
pub struct HawkEyeConfig {
    /// HawkEye-G or HawkEye-PMU.
    pub variant: Variant,
    /// Promotions per simulated second (khugepaged rate).
    pub promotions_per_sec: f64,
    /// Async pre-zeroing rate in pages per simulated second.
    pub prezero_pages_per_sec: f64,
    /// Store flavour used by the pre-zeroing thread (§3.1).
    pub store_mode: StoreMode,
    /// Access-coverage sampling period (paper: 30 s).
    pub sample_period: Cycles,
    /// Access-bit observation window within each period (paper: 1 s).
    pub sample_window: Cycles,
    /// EMA weight of the newest coverage sample.
    pub ema_alpha: f64,
    /// Memory-pressure watermark that activates bloat recovery (0.85).
    pub bloat_high: f64,
    /// Watermark below which bloat recovery deactivates (0.70).
    pub bloat_low: f64,
    /// Huge pages scanned by bloat recovery per simulated second.
    pub bloat_scans_per_sec: f64,
    /// Minimum zero-filled base pages for a huge page to be demoted and
    /// de-duplicated.
    pub dedup_min_zero: u32,
    /// HawkEye-PMU stops promoting a process below this measured MMU
    /// overhead (paper: 2 %).
    pub pmu_stop_threshold: f64,
    /// Minimum EMA coverage for a region to be considered for promotion.
    pub min_coverage: f64,
    /// Compaction migration budget when contiguity runs out.
    pub compact_budget: u64,
    /// Attempt huge mappings at fault time (true = the paper's HawkEye;
    /// false = the "HawkEye-4KB" rows of Table 8, isolating async
    /// pre-zeroing from huge pages).
    pub huge_faults: bool,
    /// Optional cap on huge pages per process — the starvation guard the
    /// paper sketches in §3.5(2) (cgroups-style resource limiting). `None`
    /// (the default) reproduces the paper's unbounded behaviour.
    pub max_huge_per_process: Option<u64>,
}

impl Default for HawkEyeConfig {
    fn default() -> Self {
        HawkEyeConfig {
            variant: Variant::G,
            promotions_per_sec: 40.0,
            prezero_pages_per_sec: 100_000.0,
            store_mode: StoreMode::NonTemporal,
            sample_period: Cycles::from_millis(60),
            sample_window: Cycles::from_millis(10),
            ema_alpha: 0.4,
            bloat_high: 0.85,
            bloat_low: 0.70,
            bloat_scans_per_sec: 400.0,
            dedup_min_zero: 64,
            pmu_stop_threshold: 0.02,
            min_coverage: 1.0,
            compact_budget: 4096,
            huge_faults: true,
            max_huge_per_process: None,
        }
    }
}

impl HawkEyeConfig {
    /// The PMU-driven variant with otherwise default tunables.
    pub fn pmu() -> Self {
        HawkEyeConfig { variant: Variant::Pmu, ..Default::default() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_constants() {
        let c = HawkEyeConfig::default();
        assert_eq!(c.variant, Variant::G);
        assert_eq!(c.bloat_high, 0.85);
        assert_eq!(c.bloat_low, 0.70);
        assert_eq!(c.pmu_stop_threshold, 0.02);
        assert_eq!(c.store_mode, StoreMode::NonTemporal);
        assert_eq!(HawkEyeConfig::pmu().variant, Variant::Pmu);
    }
}
