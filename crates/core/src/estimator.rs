//! MMU-overhead estimation for HawkEye-G (§2.4, §3.4).
//!
//! Without hardware counters, HawkEye-G estimates a process's TLB pressure
//! from its access-coverage profile: the total EMA coverage of its
//! *base-mapped* regions approximates the number of base-page TLB entries
//! the process wants simultaneously. Dividing by the TLB's base-page
//! capacity (and saturating) gives a unitless pressure score used to rank
//! processes — §2.4 explains why this estimate can diverge from measured
//! overheads (prefetch-friendly sequential patterns miss cheaply), which
//! is exactly the gap Table 9 quantifies between HawkEye-G and
//! HawkEye-PMU.

use crate::access_map::AccessMap;

/// Estimates a process's MMU-overhead score in `[0, 1]` from its access
/// map and the TLB's base-page capacity.
///
/// A score of 1.0 means the hot base-mapped working set wants at least
/// `4×` the TLB's base-page entries; 0.0 means no base-mapped coverage at
/// all (everything cold or already huge-mapped).
///
/// # Examples
///
/// ```
/// use hawkeye_core::{AccessMap, estimate_overhead};
/// use hawkeye_vm::Hvpn;
///
/// let mut hot = AccessMap::new(1.0);
/// for r in 0..16 {
///     hot.update(Hvpn(r), 512);
/// }
/// let mut cold = AccessMap::new(1.0);
/// cold.update(Hvpn(0), 4);
/// assert!(estimate_overhead(&hot, 1024) > estimate_overhead(&cold, 1024));
/// ```
pub fn estimate_overhead(map: &AccessMap, tlb_base_entries: usize) -> f64 {
    let want = map.total_coverage();
    let capacity = tlb_base_entries.max(1) as f64;
    // Pressure ramps from 0 at "fits in the TLB" to 1 at 4x the TLB.
    let pressure = (want - capacity) / (3.0 * capacity);
    pressure.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_vm::Hvpn;

    fn map_with(regions: u64, coverage: u32) -> AccessMap {
        let mut m = AccessMap::new(1.0);
        for r in 0..regions {
            m.update(Hvpn(r), coverage);
        }
        m
    }

    #[test]
    fn empty_map_has_zero_overhead() {
        assert_eq!(estimate_overhead(&AccessMap::new(0.5), 1024), 0.0);
    }

    #[test]
    fn fits_in_tlb_is_zero() {
        // 1 region x 512 pages = 512 entries < 1024-entry TLB.
        let m = map_with(1, 512);
        assert_eq!(estimate_overhead(&m, 1024), 0.0);
    }

    #[test]
    fn saturates_at_one() {
        let m = map_with(100, 512); // 51200 entries >> 4096
        assert_eq!(estimate_overhead(&m, 1024), 1.0);
    }

    #[test]
    fn monotone_in_coverage() {
        let lo = map_with(4, 300);
        let hi = map_with(4, 500);
        assert!(estimate_overhead(&hi, 1024) >= estimate_overhead(&lo, 1024));
        // And between: a half-pressure case lands strictly inside (0,1).
        let mid = map_with(4, 512); // 2048 entries: (2048-1024)/3072 = 1/3
        let e = estimate_overhead(&mid, 1024);
        assert!((e - 1.0 / 3.0).abs() < 1e-9, "{e}");
    }
}
