//! HawkEye: the paper's huge-page management algorithms.
//!
//! This crate implements the four ideas of §3 on top of the simulated
//! kernel:
//!
//! 1. **Async pre-zeroing** ([`prezero`]) — a rate-limited daemon moves
//!    free pages from the non-zero to the zero lists with non-temporal
//!    stores, so huge faults are fast *and* rare (§3.1, Table 1, Table 8).
//! 2. **Bloat recovery** ([`bloat`]) — under memory pressure (85 % / 70 %
//!    watermarks), scan huge pages of the process with the lowest MMU
//!    overhead for zero-filled base pages and de-duplicate them against
//!    the canonical zero page (§3.2, Fig. 1, Table 7).
//! 3. **Fine-grained promotion** ([`access_map`]) — per-process bucket
//!    arrays indexed by EMA *access-coverage*, promoting hot regions first
//!    regardless of virtual-address order (§3.3, Figs. 5–6).
//! 4. **MMU-overhead-driven fairness** ([`HawkEye`]) — HawkEye-PMU reads
//!    hardware counters (Table 4), HawkEye-G estimates from access
//!    coverage; both allocate huge pages to the neediest process first
//!    (§3.4, Fig. 7, Table 9).
//!
//! # Examples
//!
//! ```
//! use hawkeye_core::{HawkEye, HawkEyeConfig, Variant};
//! use hawkeye_kernel::{KernelConfig, Simulator, HugePagePolicy};
//!
//! let g = HawkEye::new(HawkEyeConfig::default());
//! assert_eq!(g.name(), "HawkEye-G");
//! let pmu = HawkEye::new(HawkEyeConfig { variant: Variant::Pmu, ..Default::default() });
//! assert_eq!(pmu.name(), "HawkEye-PMU");
//! let _sim = Simulator::new(KernelConfig::small(), Box::new(g));
//! ```

pub mod access_map;
pub mod bloat;
pub mod config;
pub mod estimator;
pub mod hawkeye;
pub mod prezero;

pub use access_map::{AccessMap, BUCKETS};
/// Warn-once `HAWKEYE_*` env knob parsing (re-exported from
/// `hawkeye_metrics::env` so policy-level code has it under one roof).
pub use hawkeye_metrics::env;
pub use bloat::BloatRecovery;
pub use config::{HawkEyeConfig, Variant};
pub use estimator::estimate_overhead;
pub use hawkeye::HawkEye;
pub use prezero::PrezeroDaemon;
