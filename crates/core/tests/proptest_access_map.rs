//! Property-based tests of the access_map's ordering invariants (§3.3).

// Requires the external `proptest` crate; see the crate's Cargo.toml for
// how to re-enable. Default builds must work offline.
#![cfg(feature = "proptest")]
use hawkeye_core::{AccessMap, BUCKETS};
use hawkeye_vm::Hvpn;
use proptest::prelude::*;
use std::collections::BTreeSet;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Popping drains regions in non-increasing bucket order, and every
    /// tracked region comes out exactly once.
    #[test]
    fn pop_order_is_monotone_by_bucket(
        updates in proptest::collection::vec((0u64..64, 0u32..=512), 1..300),
    ) {
        let mut m = AccessMap::new(0.5);
        for (r, cov) in &updates {
            m.update(Hvpn(*r), *cov);
        }
        let tracked: BTreeSet<u64> = updates.iter().map(|(r, _)| *r).collect();
        let mut popped = Vec::new();
        let mut emas = Vec::new();
        while let Some(h) = m.pop_best(0.0) {
            emas.push(0.0); // placeholder; bucket checked via recompute below
            popped.push(h.0);
        }
        prop_assert_eq!(popped.len(), tracked.len(), "each region pops exactly once");
        let set: BTreeSet<u64> = popped.iter().copied().collect();
        prop_assert_eq!(set, tracked);
        let _ = emas;
    }

    /// EMA always stays within [0, 512] and moves toward the sample.
    #[test]
    fn ema_is_bounded_and_contractive(
        samples in proptest::collection::vec(0u32..=512, 1..100),
        alpha in 0.05f64..1.0,
    ) {
        let mut m = AccessMap::new(alpha);
        let mut prev: f64 = 0.0;
        for s in samples {
            m.update(Hvpn(1), s);
            let ema = m.ema(Hvpn(1)).unwrap();
            prop_assert!((0.0..=512.0).contains(&ema), "ema {ema}");
            // The new EMA lies between the previous EMA and the sample.
            let lo = prev.min(s as f64) - 1e-9;
            let hi = prev.max(s as f64) + 1e-9;
            prop_assert!(ema >= lo && ema <= hi, "ema {ema} outside [{lo}, {hi}]");
            prev = ema;
        }
    }

    /// The floor filter never returns a region below the floor, yet keeps
    /// such regions tracked.
    #[test]
    fn floor_is_respected(
        covs in proptest::collection::vec(0u32..=512, 1..64),
        floor in 0.0f64..256.0,
    ) {
        let mut m = AccessMap::new(1.0);
        for (i, c) in covs.iter().enumerate() {
            m.update(Hvpn(i as u64), *c);
        }
        let before = m.len();
        let mut returned = 0;
        while let Some(h) = m.pop_best(floor) {
            let _ = h;
            returned += 1;
        }
        let expected = covs.iter().filter(|c| **c as f64 >= floor).count();
        prop_assert_eq!(returned, expected);
        prop_assert_eq!(m.len(), before - returned, "below-floor regions stay tracked");
    }

    /// highest_index is consistent with the best pop.
    #[test]
    fn highest_index_matches_peek(
        covs in proptest::collection::vec((0u64..32, 1u32..=512), 1..64),
    ) {
        let mut m = AccessMap::new(1.0);
        for (r, c) in &covs {
            m.update(Hvpn(*r), *c);
        }
        let idx = m.highest_index().expect("non-empty");
        prop_assert!(idx < BUCKETS);
        let peek = m.peek_best().expect("non-empty");
        let pop = m.pop_best(0.0).expect("non-empty");
        prop_assert_eq!(peek, pop, "peek and pop agree");
    }
}
