//! TPC-C-like B-tree buffer-manager workload.
//!
//! Models the page-access pattern of an in-memory B-tree under an OLTP
//! transaction mix (the btree-techniques TPC-C setup): every lookup is a
//! root→leaf pointer chase — one page per tree level, each level's page
//! picked by key — so consecutive accesses land in unrelated 2 MB
//! regions and the TLB sees almost no spatial locality. Inner nodes are
//! a small, scorching-hot set at low virtual addresses; the leaf level
//! dominates the footprint but each leaf region's *access coverage* is
//! sparse, which is exactly the shape that separates coverage-based
//! promotion (HawkEye-G) from fault-time huge-page allocation
//! (Linux-2MB).

use crate::content::DirtModel;
use hawkeye_kernel::rng::SplitMix64;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};

/// Transactions batched into one [`MemOp::TouchList`] pointer chase.
const TXN_BATCH: usize = 64;

/// Base pages per 2 MB region.
const REGION_PAGES: u64 = 512;

/// A B-tree buffer manager driven by a skewed OLTP transaction mix.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::BtreeOltp;
/// use hawkeye_kernel::Workload;
///
/// let mut w = BtreeOltp::tpcc(16, 200);
/// assert_eq!(w.name(), "tpcc-btree");
/// assert!(w.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct BtreeOltp {
    name: String,
    /// Pages per tree level, root first; the leaf level is last.
    level_pages: Vec<u64>,
    /// First page of each level in the buffer-pool arena.
    level_starts: Vec<u64>,
    /// Fraction of lookups that hit the hot (low-key) end of the leaves.
    skew: f64,
    /// Fraction of transactions that write their leaf page.
    write_fraction: f64,
    /// Leaf pages appended to a lookup by a range scan, when one fires.
    scan_len: u64,
    /// Fraction of transactions that run a range scan.
    scan_fraction: f64,
    txns_left: u64,
    think: u32,
    /// Fraction of each 2 MB leaf region holding data; the tail is the
    /// page-level free space a real B-tree keeps for inserts, and the
    /// bulk load never touches it (so under fault-time huge pages it
    /// stays zero-filled — exactly what bloat recovery hunts for).
    fill: f64,
    /// Bulk-load cursor over leaf regions (used when `fill < 1`).
    load_region: u64,
    phase: u8,
    rng: SplitMix64,
    dirt: DirtModel,
}

impl BtreeOltp {
    /// Fully parameterized constructor. `leaf_regions` sizes the leaf
    /// level in 2 MB regions; inner levels are derived with a fanout of
    /// 64 pages per parent entry, root last.
    ///
    /// # Panics
    ///
    /// Panics if `leaf_regions` is 0.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        name: impl Into<String>,
        leaf_regions: u64,
        skew: f64,
        write_fraction: f64,
        scan_len: u64,
        scan_fraction: f64,
        txns: u64,
        think: u32,
        seed: u64,
    ) -> Self {
        assert!(leaf_regions > 0, "empty tree");
        // Build the level sizes leaf-up (fanout 64), then lay them out
        // root-first so inner nodes sit at low VAs like an arena
        // allocator would place them.
        let mut sizes = vec![leaf_regions * 512];
        while *sizes.last().expect("non-empty") > 1 {
            let parent = sizes.last().expect("non-empty").div_ceil(64);
            sizes.push(parent);
        }
        sizes.reverse();
        let mut starts = Vec::with_capacity(sizes.len());
        let mut at = 0u64;
        for s in &sizes {
            starts.push(at);
            at += s;
        }
        BtreeOltp {
            name: name.into(),
            level_pages: sizes,
            level_starts: starts,
            skew,
            write_fraction,
            scan_len,
            scan_fraction,
            txns_left: txns,
            think,
            fill: 1.0,
            load_region: 0,
            phase: 0,
            rng: SplitMix64::new(seed),
            dirt: DirtModel::paper_average(seed),
        }
    }

    /// Sets the leaf fill factor: only the first `fill` fraction of every
    /// leaf region's pages carries data (B-trees typically run ~⅔ full).
    /// Lookups and scans target data pages only.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < fill <= 1`.
    #[must_use]
    pub fn with_fill(mut self, fill: f64) -> Self {
        assert!(fill > 0.0 && fill <= 1.0, "fill factor out of range");
        self.fill = fill;
        self
    }

    /// The TPC-C-like mix: 70 % of lookups in the hot key range, ~30 %
    /// of transactions writing, 10 % running an 8-page range scan.
    pub fn tpcc(leaf_regions: u64, txns: u64) -> Self {
        Self::new("tpcc-btree", leaf_regions, 0.7, 0.3, 8, 0.1, txns, 90, 401)
    }

    /// Total buffer-pool footprint in base pages.
    pub fn pages(&self) -> u64 {
        self.level_pages.iter().sum()
    }

    /// Tree height (number of levels, root and leaf included).
    pub fn height(&self) -> usize {
        self.level_pages.len()
    }

    /// Data pages per 2 MB leaf region under the configured fill factor.
    fn filled_per_region(&self) -> u64 {
        ((REGION_PAGES as f64 * self.fill) as u64).clamp(1, REGION_PAGES)
    }

    /// Number of 2 MB regions in the leaf level.
    fn leaf_regions(&self) -> u64 {
        self.level_pages.last().expect("leaf level") / REGION_PAGES
    }

    /// Leaf data pages (excluding per-region free space).
    fn data_leaf_pages(&self) -> u64 {
        self.leaf_regions() * self.filled_per_region()
    }

    /// Arena offset (from the leaf start) of data-page `slot`: slots pack
    /// the filled head of each region, skipping the free tails.
    fn leaf_offset(&self, slot: u64) -> u64 {
        let fpr = self.filled_per_region();
        (slot / fpr) * REGION_PAGES + slot % fpr
    }

    /// The root→leaf page path for one key in `[0, 1)`.
    fn chase(&self, key: f64) -> impl Iterator<Item = Vpn> + '_ {
        let leaf = self.level_pages.len() - 1;
        self.level_pages
            .iter()
            .enumerate()
            .zip(&self.level_starts)
            .map(move |((lvl, pages), start)| {
                if lvl == leaf {
                    let data = self.data_leaf_pages();
                    let slot = ((key * data as f64) as u64).min(data - 1);
                    Vpn(start + self.leaf_offset(slot))
                } else {
                    let slot = ((key * *pages as f64) as u64).min(pages - 1);
                    Vpn(start + slot)
                }
            })
    }

    /// One transaction's key: 70/30-style skew toward the low key range
    /// (hot warehouses), the rest uniform.
    fn key(&mut self) -> f64 {
        if self.rng.unit() < self.skew {
            // Hot range: the lowest 10 % of the key space.
            self.rng.unit() * 0.1
        } else {
            self.rng.unit()
        }
    }
}

impl Workload for BtreeOltp {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        match self.phase {
            0 => {
                self.phase = 1;
                Some(MemOp::Mmap {
                    start: Vpn(0),
                    pages: self.pages(),
                    kind: VmaKind::Anon,
                })
            }
            1 => {
                if self.fill >= 1.0 {
                    // Bulk-load the tree: the buffer manager writes every
                    // page once (index build), so the whole arena is backed.
                    self.phase = 3;
                    return Some(MemOp::TouchRange {
                        start: Vpn(0),
                        pages: self.pages(),
                        write: true,
                        think: 20,
                        stride: 1,
                        repeats: 1,
                    });
                }
                // Partial fill: load the inner levels whole, then each
                // leaf region's data head (phase 2); the free tails are
                // never written.
                self.phase = 2;
                let inner = *self.level_starts.last().expect("leaf level");
                if inner == 0 {
                    return self.next_op();
                }
                Some(MemOp::TouchRange {
                    start: Vpn(0),
                    pages: inner,
                    write: true,
                    think: 20,
                    stride: 1,
                    repeats: 1,
                })
            }
            2 => {
                if self.load_region == self.leaf_regions() {
                    self.phase = 3;
                    return self.next_op();
                }
                let start =
                    self.level_starts.last().expect("leaf level") + self.load_region * REGION_PAGES;
                self.load_region += 1;
                Some(MemOp::TouchRange {
                    start: Vpn(start),
                    pages: self.filled_per_region(),
                    write: true,
                    think: 20,
                    stride: 1,
                    repeats: 1,
                })
            }
            _ => {
                if self.txns_left == 0 {
                    return None;
                }
                let batch = (self.txns_left).min(TXN_BATCH as u64);
                self.txns_left -= batch;
                let mut vpns = Vec::with_capacity(batch as usize * (self.height() + 2));
                let mut writes = false;
                for _ in 0..batch {
                    let key = self.key();
                    vpns.extend(self.chase(key));
                    if self.rng.unit() < self.scan_fraction {
                        // Range scan: walk `scan_len` sibling data leaves.
                        let data = self.data_leaf_pages();
                        let leaf_start = *self.level_starts.last().expect("leaf level");
                        let slot = ((key * data as f64) as u64).min(data - 1);
                        for i in 1..=self.scan_len {
                            vpns.push(Vpn(leaf_start + self.leaf_offset((slot + i) % data)));
                        }
                    }
                    writes |= self.rng.unit() < self.write_fraction;
                }
                Some(MemOp::TouchList {
                    vpns,
                    write: writes,
                    think: self.think,
                })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn levels_shrink_by_fanout_root_first() {
        let w = BtreeOltp::tpcc(16, 10);
        // 16 regions of leaves = 8192 pages -> 128 -> 2 -> 1 root.
        assert_eq!(w.level_pages, vec![1, 2, 128, 8192]);
        assert_eq!(w.level_starts, vec![0, 1, 3, 131]);
        assert_eq!(w.pages(), 8323);
        assert_eq!(w.height(), 4);
    }

    #[test]
    fn every_txn_chases_root_to_leaf() {
        let mut w = BtreeOltp::new("t", 8, 0.7, 0.0, 4, 0.0, 10, 0, 1);
        let _ = w.next_op(); // mmap
        let _ = w.next_op(); // bulk load
        let Some(MemOp::TouchList { vpns, .. }) = w.next_op() else {
            panic!("expected pointer chase")
        };
        let height = w.height() as u64;
        assert_eq!(vpns.len() as u64 % height, 0, "whole paths only");
        // Each path starts at the root page and ends inside the leaves.
        assert_eq!(vpns[0], Vpn(0));
        assert!(vpns[height as usize - 1].0 >= w.level_starts[w.height() - 1]);
    }

    #[test]
    fn skewed_keys_concentrate_on_hot_leaves() {
        let mut w = BtreeOltp::new("t", 8, 0.7, 0.0, 0, 0.0, 2000, 0, 2);
        let _ = w.next_op();
        let _ = w.next_op();
        let leaf_start = *w.level_starts.last().unwrap();
        let leaf_pages = *w.level_pages.last().unwrap();
        let (mut hot, mut leaves) = (0u64, 0u64);
        while let Some(MemOp::TouchList { vpns, .. }) = w.next_op() {
            for v in vpns {
                if v.0 >= leaf_start {
                    leaves += 1;
                    // The hot key range is the lowest 10 % of keys.
                    hot += (v.0 < leaf_start + leaf_pages / 10) as u64;
                }
            }
        }
        let frac = hot as f64 / leaves as f64;
        // 70% targeted + 10%-of-space uniform remainder ≈ 0.73
        assert!((0.67..0.8).contains(&frac), "hot-leaf fraction {frac}");
    }

    #[test]
    fn runs_to_completion_in_simulator() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(BtreeOltp::tpcc(8, 200)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished() && !p.is_oom());
        // Bulk load faults the whole arena exactly once.
        assert_eq!(p.stats().faults, BtreeOltp::tpcc(8, 200).pages());
    }

    #[test]
    #[should_panic(expected = "empty tree")]
    fn zero_leaves_rejected() {
        let _ = BtreeOltp::new("t", 0, 0.5, 0.0, 0, 0.0, 1, 0, 0);
    }

    #[test]
    fn fill_factor_loads_only_region_heads() {
        let mut w = BtreeOltp::new("t", 4, 0.7, 0.0, 0, 0.0, 0, 0, 1).with_fill(0.65);
        let _ = w.next_op(); // mmap
        let fpr = (512.0 * 0.65) as u64;
        let leaf_start = *w.level_starts.last().unwrap();
        // Inner levels load whole, then one ranged write per leaf region
        // covering exactly the filled head.
        let Some(MemOp::TouchRange { start, pages, .. }) = w.next_op() else {
            panic!()
        };
        assert_eq!((start.0, pages), (0, leaf_start));
        for r in 0..4u64 {
            let Some(MemOp::TouchRange {
                start,
                pages,
                write,
                ..
            }) = w.next_op()
            else {
                panic!("expected leaf-region load {r}")
            };
            assert_eq!((start.0, pages, write), (leaf_start + r * 512, fpr, true));
        }
        assert!(w.next_op().is_none(), "no transactions requested");
    }

    #[test]
    fn fill_factor_lookups_avoid_free_tails() {
        let mut w = BtreeOltp::new("t", 4, 0.7, 0.3, 8, 0.2, 3000, 0, 2).with_fill(0.65);
        for _ in 0..6 {
            let _ = w.next_op(); // mmap + inner + 4 leaf regions
        }
        let fpr = (512.0 * 0.65) as u64;
        let leaf_start = *w.level_starts.last().unwrap();
        while let Some(MemOp::TouchList { vpns, .. }) = w.next_op() {
            for v in vpns {
                if v.0 >= leaf_start {
                    assert!((v.0 - leaf_start) % 512 < fpr, "touched free tail at {v:?}");
                }
            }
        }
    }

    #[test]
    fn full_fill_is_the_default_and_identical() {
        // `with_fill(1.0)` must not change op streams (byte determinism
        // of the pre-fill targets depends on it).
        let mut a = BtreeOltp::tpcc(4, 50);
        let mut b = BtreeOltp::tpcc(4, 50).with_fill(1.0);
        loop {
            let (x, y) = (a.next_op(), b.next_op());
            assert_eq!(format!("{x:?}"), format!("{y:?}"));
            if x.is_none() {
                break;
            }
        }
    }
}
