//! A Redis-like in-memory key-value store.
//!
//! Drives the paper's bloat experiments (Fig. 1, Table 7), the fast-fault
//! experiment (Table 8, 2 MB values) and the lightly-loaded server of
//! Fig. 8. The store models a user-space allocator: values are carved
//! from a bump region, deletions `madvise` the freed pages back to the
//! kernel, and freed chunks are reused first-fit for later inserts — so a
//! delete-heavy phase leaves the address space sparse, exactly the state
//! that lures Linux/Ingens into promoting mostly-empty regions (§2.1).

use crate::content::DirtModel;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_kernel::rng::SplitMix64;
use std::collections::VecDeque;

const KEY_CHUNK: u64 = 2048;

/// One phase of a Redis run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum RedisOp {
    /// Insert `keys` values of `value_pages` pages each.
    Insert {
        /// Number of keys inserted.
        keys: u64,
        /// Pages per value (1 = 4 KB values, 512 = 2 MB values).
        value_pages: u64,
        /// Compute cycles per touched page.
        think: u32,
    },
    /// Delete a random fraction of the live keys (releases their pages
    /// via `madvise(MADV_DONTNEED)`, like Redis' jemalloc does).
    DeleteFrac {
        /// Fraction of live keys removed (0.0–1.0).
        fraction: f64,
    },
    /// Serve `requests` random GETs, paced by `think` cycles each.
    Serve {
        /// Number of GET requests.
        requests: u64,
        /// Compute cycles per request (pacing).
        think: u32,
    },
    /// Idle for `cycles`.
    Pause {
        /// Idle cycles.
        cycles: u64,
    },
}

/// The Redis-like workload.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::{RedisKv, RedisOp};
/// use hawkeye_kernel::Workload;
///
/// let mut r = RedisKv::new(64 * 512, vec![
///     RedisOp::Insert { keys: 1000, value_pages: 1, think: 100 },
///     RedisOp::DeleteFrac { fraction: 0.8 },
/// ], 7);
/// assert_eq!(r.name(), "redis");
/// assert!(r.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct RedisKv {
    capacity_pages: u64,
    script: VecDeque<RedisOp>,
    mmapped: bool,
    bump: u64,
    /// Live values: (first page, pages).
    live: Vec<(u64, u64)>,
    /// Freed chunks available for reuse: (first page, pages).
    free_chunks: Vec<(u64, u64)>,
    /// Deletions waiting to be emitted as madvise ops.
    pending_deletes: VecDeque<(u64, u64)>,
    rng: SplitMix64,
    dirt: DirtModel,
}

impl RedisKv {
    /// Creates a store with a `capacity_pages` VA arena and a phase
    /// script.
    pub fn new(capacity_pages: u64, script: Vec<RedisOp>, seed: u64) -> Self {
        RedisKv {
            capacity_pages,
            script: script.into_iter().collect(),
            mmapped: false,
            bump: 0,
            live: Vec::new(),
            free_chunks: Vec::new(),
            pending_deletes: VecDeque::new(),
            rng: SplitMix64::new(seed),
            dirt: DirtModel::new(4.0, seed ^ 0x5eed),
        }
    }

    /// A lightly-loaded server (Fig. 8): populate `keys` 4 KB values then
    /// serve random GETs at a low rate indefinitely-ish.
    pub fn lightly_loaded(keys: u64, requests: u64, seed: u64) -> Self {
        let capacity = keys * 2;
        Self::new(
            capacity,
            vec![
                RedisOp::Insert { keys, value_pages: 1, think: 100 },
                RedisOp::Serve { requests, think: 20_000 },
            ],
            seed,
        )
    }

    /// Number of live keys.
    pub fn live_keys(&self) -> usize {
        self.live.len()
    }

    /// Allocates `pages` from the free list (first fit) or the bump
    /// cursor. Returns the first page, or `None` if the arena is full.
    fn alloc_value(&mut self, pages: u64) -> Option<u64> {
        if let Some(i) = self.free_chunks.iter().position(|(_, sz)| *sz >= pages) {
            let (start, sz) = self.free_chunks[i];
            if sz == pages {
                self.free_chunks.swap_remove(i);
            } else {
                self.free_chunks[i] = (start + pages, sz - pages);
            }
            return Some(start);
        }
        if self.bump + pages <= self.capacity_pages {
            let start = self.bump;
            self.bump += pages;
            return Some(start);
        }
        None
    }
}

impl Workload for RedisKv {
    fn name(&self) -> &str {
        "redis"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if !self.mmapped {
            self.mmapped = true;
            return Some(MemOp::Mmap {
                start: Vpn(0),
                pages: self.capacity_pages,
                kind: VmaKind::Anon,
            });
        }
        // Drain pending deletions one madvise at a time.
        if let Some((start, pages)) = self.pending_deletes.pop_front() {
            return Some(MemOp::Madvise { start: Vpn(start), pages });
        }
        let op = self.script.front().copied()?;
        match op {
            RedisOp::Insert { keys, value_pages, think } => {
                let batch = KEY_CHUNK.min(keys);
                // Contiguity: consecutive bump allocations coalesce into
                // one range op when possible.
                let mut vpns: Vec<Vpn> = Vec::new();
                let mut inserted = 0;
                while inserted < batch {
                    let Some(start) = self.alloc_value(value_pages) else { break };
                    self.live.push((start, value_pages));
                    for p in start..start + value_pages {
                        vpns.push(Vpn(p));
                    }
                    inserted += 1;
                }
                // Update or retire the script entry.
                let remaining = keys - inserted;
                if remaining == 0 || inserted == 0 {
                    self.script.pop_front();
                } else if let Some(RedisOp::Insert { keys, .. }) = self.script.front_mut() {
                    *keys = remaining;
                }
                if vpns.is_empty() {
                    // Arena exhausted: skip to the next phase.
                    return self.next_op();
                }
                Some(MemOp::TouchList { vpns, write: true, think })
            }
            RedisOp::DeleteFrac { fraction } => {
                self.script.pop_front();
                let mut kept = Vec::with_capacity(self.live.len());
                for (start, pages) in std::mem::take(&mut self.live) {
                    if self.rng.unit() < fraction {
                        self.pending_deletes.push_back((start, pages));
                        self.free_chunks.push((start, pages));
                    } else {
                        kept.push((start, pages));
                    }
                }
                self.live = kept;
                self.next_op()
            }
            RedisOp::Serve { requests, think } => {
                if self.live.is_empty() {
                    self.script.pop_front();
                    return self.next_op();
                }
                let batch = KEY_CHUNK.min(requests);
                let vpns: Vec<Vpn> = (0..batch)
                    .map(|_| {
                        let (start, pages) = self.live[self.rng.below(self.live.len() as u64) as usize];
                        Vpn(start + self.rng.below(pages))
                    })
                    .collect();
                let remaining = requests - batch;
                if remaining == 0 {
                    self.script.pop_front();
                } else if let Some(RedisOp::Serve { requests, .. }) = self.script.front_mut() {
                    *requests = remaining;
                }
                Some(MemOp::TouchList { vpns, write: false, think })
            }
            RedisOp::Pause { cycles } => {
                self.script.pop_front();
                Some(MemOp::Compute { cycles })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn insert_then_delete_releases_memory() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(RedisKv::new(
            32 * 512,
            vec![
                RedisOp::Insert { keys: 8000, value_pages: 1, think: 50 },
                RedisOp::DeleteFrac { fraction: 0.8 },
                RedisOp::Pause { cycles: 1_000_000 },
            ],
            3,
        )));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished() && !p.is_oom());
        assert_eq!(p.stats().faults, 8000);
        // ~80% deleted; the rest freed at exit.
        assert_eq!(sim.machine().pm().allocated_pages(), 1);
    }

    #[test]
    fn freed_chunks_are_reused_for_small_values() {
        let mut r = RedisKv::new(
            1024,
            vec![
                RedisOp::Insert { keys: 100, value_pages: 1, think: 0 },
                RedisOp::DeleteFrac { fraction: 1.0 },
                RedisOp::Insert { keys: 50, value_pages: 1, think: 0 },
            ],
            5,
        );
        let mut max_vpn = 0;
        while let Some(op) = r.next_op() {
            if let MemOp::TouchList { vpns, .. } = op {
                max_vpn = max_vpn.max(vpns.iter().map(|v| v.0).max().unwrap());
            }
        }
        assert!(max_vpn < 100, "second insert reused freed pages (max vpn {max_vpn})");
    }

    #[test]
    fn large_values_cannot_reuse_small_holes() {
        // The Fig. 1 P3 situation: 4 KB holes cannot host 2 MB values.
        let mut r = RedisKv::new(
            8 * 512,
            vec![
                RedisOp::Insert { keys: 512, value_pages: 1, think: 0 },
                RedisOp::DeleteFrac { fraction: 0.9 },
                RedisOp::Insert { keys: 2, value_pages: 512, think: 0 },
            ],
            5,
        );
        let mut big_value_start = None;
        while let Some(op) = r.next_op() {
            if let MemOp::TouchList { vpns, .. } = op {
                if vpns.len() >= 512 {
                    big_value_start = Some(vpns[0].0);
                }
            }
        }
        assert!(big_value_start.expect("big insert happened") >= 512,
            "2 MB values must come from fresh VA space, not 4 KB holes");
    }

    #[test]
    fn serve_touches_only_live_keys() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(RedisKv::lightly_loaded(2000, 5000, 9)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 2000, "GETs never fault");
        assert_eq!(p.stats().touches, 2000 + 5000);
    }

    #[test]
    fn arena_exhaustion_skips_insert_gracefully() {
        let mut r = RedisKv::new(
            64,
            vec![RedisOp::Insert { keys: 1000, value_pages: 1, think: 0 }],
            5,
        );
        let mut touched = 0;
        while let Some(op) = r.next_op() {
            if let MemOp::TouchList { vpns, .. } = op {
                touched += vpns.len();
            }
        }
        assert_eq!(touched, 64, "stops at capacity without panicking");
    }
}
