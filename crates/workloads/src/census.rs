//! The Table 2 census: 79 application profiles across 7 benchmark suites.
//!
//! The paper observes that fewer than 20 % of applications in popular
//! suites are TLB-sensitive (> 3 % speedup from huge pages):
//!
//! | Suite            | Total | TLB-sensitive |
//! |------------------|-------|---------------|
//! | SPEC CPU2006 int | 12    | 4 (mcf, astar, omnetpp, xalancbmk) |
//! | SPEC CPU2006 fp  | 19    | 3 (zeusmp, GemsFDTD, cactusADM)    |
//! | PARSEC           | 13    | 2 (canneal, dedup)                 |
//! | SPLASH-2         | 10    | 0                                  |
//! | Biobench         | 9     | 2 (tigr, mummer)                   |
//! | NPB              | 9     | 2 (cg, bt)                         |
//! | CloudSuite       | 7     | 2 (graph-, data-analytics)         |
//!
//! Each profile is a synthetic kernel whose pattern shape makes it TLB
//! sensitive (random gathers over a large footprint) or insensitive
//! (sequential/strided sweeps or small footprints).

use crate::npb::{NpbKernel, Pattern};

/// One application profile in the census.
#[derive(Debug, Clone, PartialEq)]
pub struct AppProfile {
    /// Benchmark suite the application belongs to.
    pub suite: &'static str,
    /// Application name.
    pub name: &'static str,
    /// Footprint in 2 MB regions.
    pub regions: u64,
    /// Access-pattern shape.
    pub pattern: Pattern,
    /// Whether the paper classifies it TLB-sensitive.
    pub expected_sensitive: bool,
}

impl AppProfile {
    /// Builds a runnable workload for this profile performing `iters`
    /// pattern chunks.
    pub fn workload(&self, iters: u64) -> NpbKernel {
        let seed = self
            .name
            .bytes()
            .fold(0u64, |acc, b| acc.wrapping_mul(31).wrapping_add(b as u64));
        NpbKernel::new(self.name, self.regions, self.pattern, iters, 60, seed)
    }
}

const RND: Pattern = Pattern::Random { wss: 0.6 };
const SEQ: Pattern = Pattern::Sequential { repeats: 48 };
const STR: Pattern = Pattern::Strided { stride: 5, repeats: 32 };

fn app(
    suite: &'static str,
    name: &'static str,
    regions: u64,
    pattern: Pattern,
    expected_sensitive: bool,
) -> AppProfile {
    AppProfile { suite, name, regions, pattern, expected_sensitive }
}

/// The full 79-application census.
pub fn census() -> Vec<AppProfile> {
    let mut apps = Vec::new();
    // SPEC CPU2006 integer: 12 apps, 4 sensitive.
    for (name, regions, pat, s) in [
        ("perlbench", 4, SEQ, false),
        ("bzip2", 6, SEQ, false),
        ("gcc", 6, STR, false),
        ("mcf", 24, RND, true),
        ("gobmk", 2, SEQ, false),
        ("hmmer", 2, SEQ, false),
        ("sjeng", 2, SEQ, false),
        ("libquantum", 4, SEQ, false),
        ("h264ref", 3, SEQ, false),
        ("omnetpp", 16, RND, true),
        ("astar", 16, RND, true),
        ("xalancbmk", 18, RND, true),
    ] {
        apps.push(app("spec-int", name, regions, pat, s));
    }
    // SPEC CPU2006 fp: 19 apps, 3 sensitive.
    for (name, regions, pat, s) in [
        ("bwaves", 12, SEQ, false),
        ("gamess", 2, SEQ, false),
        ("milc", 10, STR, false),
        ("zeusmp", 16, RND, true),
        ("gromacs", 2, SEQ, false),
        ("cactusADM", 16, RND, true),
        ("leslie3d", 8, SEQ, false),
        ("namd", 2, SEQ, false),
        ("dealII", 4, SEQ, false),
        ("soplex", 8, STR, false),
        ("povray", 1, SEQ, false),
        ("calculix", 2, SEQ, false),
        ("GemsFDTD", 16, RND, true),
        ("tonto", 2, SEQ, false),
        ("lbm", 6, SEQ, false),
        ("wrf", 8, STR, false),
        ("sphinx3", 2, SEQ, false),
        ("gemsfdtd-train", 4, SEQ, false),
        ("specrand", 1, SEQ, false),
    ] {
        apps.push(app("spec-fp", name, regions, pat, s));
    }
    // PARSEC: 13 apps, 2 sensitive.
    for (name, regions, pat, s) in [
        ("blackscholes", 2, SEQ, false),
        ("bodytrack", 2, SEQ, false),
        ("canneal", 20, RND, true),
        ("dedup", 18, RND, true),
        ("facesim", 4, SEQ, false),
        ("ferret", 3, STR, false),
        ("fluidanimate", 4, SEQ, false),
        ("freqmine", 4, SEQ, false),
        ("raytrace", 4, SEQ, false),
        ("streamcluster", 6, SEQ, false),
        ("swaptions", 1, SEQ, false),
        ("vips", 3, SEQ, false),
        ("x264", 3, SEQ, false),
    ] {
        apps.push(app("parsec", name, regions, pat, s));
    }
    // SPLASH-2: 10 apps, none sensitive.
    for name in
        ["barnes", "fmm", "ocean", "radiosity", "radix", "raytrace-s", "volrend", "water-ns", "water-sp", "cholesky"]
    {
        apps.push(app("splash-2", name, 3, SEQ, false));
    }
    // Biobench: 9 apps, 2 sensitive.
    for (name, regions, pat, s) in [
        ("blastn", 4, SEQ, false),
        ("blastp", 4, SEQ, false),
        ("clustalw", 2, SEQ, false),
        ("fasta", 4, STR, false),
        ("hmmer-bio", 2, SEQ, false),
        ("mummer", 20, RND, true),
        ("phylip", 2, SEQ, false),
        ("tigr", 22, RND, true),
        ("ce", 2, SEQ, false),
    ] {
        apps.push(app("biobench", name, regions, pat, s));
    }
    // NPB: 9 apps, 2 sensitive (cg, bt per Table 2).
    for (name, regions, pat, s) in [
        ("bt", 14, Pattern::Random { wss: 0.35 }, true),
        ("cg", 16, RND, true),
        ("dc", 4, SEQ, false),
        ("ep", 1, SEQ, false),
        ("ft", 10, STR, false),
        ("is", 4, SEQ, false),
        ("lu", 8, SEQ, false),
        ("mg", 24, SEQ, false),
        ("sp", 12, STR, false),
    ] {
        apps.push(app("npb", name, regions, pat, s));
    }
    // CloudSuite: 7 apps, 2 sensitive.
    for (name, regions, pat, s) in [
        ("data-analytics", 20, RND, true),
        ("data-caching", 8, SEQ, false),
        ("data-serving", 8, STR, false),
        ("graph-analytics", 24, RND, true),
        ("media-streaming", 4, SEQ, false),
        ("web-search", 8, STR, false),
        ("web-serving", 4, SEQ, false),
    ] {
        apps.push(app("cloudsuite", name, regions, pat, s));
    }
    apps
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn census_matches_table2_counts() {
        let apps = census();
        assert_eq!(apps.len(), 79);
        let mut per_suite: BTreeMap<&str, (u32, u32)> = BTreeMap::new();
        for a in &apps {
            let e = per_suite.entry(a.suite).or_default();
            e.0 += 1;
            e.1 += a.expected_sensitive as u32;
        }
        assert_eq!(per_suite["spec-int"], (12, 4));
        assert_eq!(per_suite["spec-fp"], (19, 3));
        assert_eq!(per_suite["parsec"], (13, 2));
        assert_eq!(per_suite["splash-2"], (10, 0));
        assert_eq!(per_suite["biobench"], (9, 2));
        assert_eq!(per_suite["npb"], (9, 2));
        assert_eq!(per_suite["cloudsuite"], (7, 2));
        let total_sensitive: u32 = apps.iter().map(|a| a.expected_sensitive as u32).sum();
        assert_eq!(total_sensitive, 15);
    }

    #[test]
    fn names_are_unique() {
        let apps = census();
        let mut names: Vec<&str> = apps.iter().map(|a| a.name).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 79);
    }

    #[test]
    fn sensitive_apps_use_random_patterns() {
        for a in census() {
            if a.expected_sensitive {
                assert!(
                    matches!(a.pattern, Pattern::Random { .. }),
                    "{} marked sensitive but not random",
                    a.name
                );
                assert!(a.regions >= 12, "{} footprint too small to stress the TLB", a.name);
            }
        }
    }

    #[test]
    fn profiles_build_runnable_workloads() {
        use hawkeye_kernel::Workload;
        let a = &census()[0];
        let mut w = a.workload(3);
        assert_eq!(w.name(), a.name);
        assert!(w.next_op().is_some());
    }
}
