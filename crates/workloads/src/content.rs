//! Page-content model: first-non-zero-byte distributions (Fig. 3).
//!
//! The paper measures, across 56 workloads, that the average distance to
//! the first non-zero byte of an in-use 4 KB page is only **9.11 bytes** —
//! the property that makes bloat-recovery scans cheap for in-use pages.
//! Each workload generator carries a [`DirtModel`] that samples offsets
//! from a truncated exponential with a per-workload mean.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Sampler of first-non-zero-byte offsets for written pages.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::DirtModel;
///
/// let mut d = DirtModel::new(9.11, 7);
/// let o = d.sample();
/// assert!(o < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct DirtModel {
    mean: f64,
    rng: SmallRng,
}

impl DirtModel {
    /// Creates a model with the given mean offset (bytes) and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn new(mean: f64, seed: u64) -> Self {
        assert!(mean > 0.0, "mean offset must be positive");
        DirtModel { mean, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The paper's cross-workload average (9.11 bytes).
    pub fn paper_average(seed: u64) -> Self {
        Self::new(9.11, seed)
    }

    /// Configured mean offset.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples one offset (0–4095), exponentially distributed around the
    /// mean and truncated to the page.
    pub fn sample(&mut self) -> u16 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        let x = -self.mean * (1.0 - u).ln();
        (x as u64).min(4095) as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_page() {
        let mut d = DirtModel::new(9.11, 1);
        for _ in 0..10_000 {
            assert!(d.sample() < 4096);
        }
    }

    #[test]
    fn empirical_mean_matches_configuration() {
        let mut d = DirtModel::paper_average(42);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample() as u64).sum();
        let mean = sum as f64 / n as f64;
        // Truncated exponential with floor-to-int shifts the mean ~0.5 down.
        assert!((mean - 8.6).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u16> = {
            let mut d = DirtModel::new(5.0, 7);
            (0..16).map(|_| d.sample()).collect()
        };
        let b: Vec<u16> = {
            let mut d = DirtModel::new(5.0, 7);
            (0..16).map(|_| d.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let _ = DirtModel::new(0.0, 1);
    }
}
