//! Page-content model: first-non-zero-byte distributions (Fig. 3).
//!
//! The paper measures, across 56 workloads, that the average distance to
//! the first non-zero byte of an in-use 4 KB page is only **9.11 bytes** —
//! the property that makes bloat-recovery scans cheap for in-use pages.
//! Each workload generator carries a [`DirtModel`] that samples offsets
//! from a truncated exponential with a per-workload mean.

use hawkeye_kernel::rng::SplitMix64;

/// Sampler of first-non-zero-byte offsets for written pages.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::DirtModel;
///
/// let mut d = DirtModel::new(9.11, 7);
/// let o = d.sample();
/// assert!(o < 4096);
/// ```
#[derive(Debug, Clone)]
pub struct DirtModel {
    mean: f64,
    rng: SplitMix64,
    /// Inverse-CDF table: `thresholds[k]` is `(1 − e^{−(k+1)/mean})·2^53`
    /// rounded up; a 53-bit uniform draw `u` samples offset
    /// `#{k : thresholds[k] ≤ u}`. The table ends where the threshold
    /// reaches `2^53` (unreachable), so lookups never scan dead tail.
    thresholds: Vec<u64>,
    /// Jump table over the draw's top [`LUT_BITS`] bits: `lut[b]` is the
    /// sample for the smallest draw in bucket `b`, so a lookup needs only
    /// a short forward scan past any thresholds inside the bucket.
    lut: Vec<u16>,
}

/// The resolution of [`SplitMix64::unit`] draws: 53 mantissa bits.
const UNIT_BITS: u32 = 53;
/// Jump-table index width.
const LUT_BITS: u32 = 12;

impl DirtModel {
    /// Creates a model with the given mean offset (bytes) and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `mean` is not positive.
    pub fn new(mean: f64, seed: u64) -> Self {
        assert!(mean > 0.0, "mean offset must be positive");
        // Offsets follow floor of an exponential with the given mean,
        // truncated to the page: P(X > k) = e^{-(k+1)/mean}. Sampling is
        // a binary search over fixed-point CDF thresholds, which keeps
        // the per-write cost on the simulator's touch fast path to a few
        // integer compares instead of a transcendental.
        let unit = (1u64 << UNIT_BITS) as f64;
        let mut thresholds = Vec::new();
        for k in 0..4095u32 {
            let t = ((1.0 - (-((k + 1) as f64) / mean).exp()) * unit).ceil() as u64;
            if t >= unit as u64 {
                break;
            }
            thresholds.push(t);
        }
        let lut = (0..1u64 << LUT_BITS)
            .map(|b| {
                let u = b << (UNIT_BITS - LUT_BITS);
                thresholds.partition_point(|&t| t <= u) as u16
            })
            .collect();
        DirtModel { mean, rng: SplitMix64::new(seed), thresholds, lut }
    }

    /// The paper's cross-workload average (9.11 bytes).
    pub fn paper_average(seed: u64) -> Self {
        Self::new(9.11, seed)
    }

    /// Configured mean offset.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Samples one offset (0–4095), exponentially distributed around the
    /// mean and truncated to the page.
    pub fn sample(&mut self) -> u16 {
        let u = self.rng.next_u64() >> (64 - UNIT_BITS);
        let mut k = self.lut[(u >> (UNIT_BITS - LUT_BITS)) as usize] as usize;
        while k < self.thresholds.len() && self.thresholds[k] <= u {
            k += 1;
        }
        k as u16
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_page() {
        let mut d = DirtModel::new(9.11, 1);
        for _ in 0..10_000 {
            assert!(d.sample() < 4096);
        }
    }

    #[test]
    fn empirical_mean_matches_configuration() {
        let mut d = DirtModel::paper_average(42);
        let n = 200_000;
        let sum: u64 = (0..n).map(|_| d.sample() as u64).sum();
        let mean = sum as f64 / n as f64;
        // Truncated exponential with floor-to-int shifts the mean ~0.5 down.
        assert!((mean - 8.6).abs() < 0.5, "empirical mean {mean}");
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u16> = {
            let mut d = DirtModel::new(5.0, 7);
            (0..16).map(|_| d.sample()).collect()
        };
        let b: Vec<u16> = {
            let mut d = DirtModel::new(5.0, 7);
            (0..16).map(|_| d.sample()).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_mean_rejected() {
        let _ = DirtModel::new(0.0, 1);
    }
}
