//! Adversarial workloads: attackers engineered to break huge-page
//! policies.
//!
//! Two attackers, each with a continuous `intensity` knob in `[0, 1]`
//! that the `adversarial` suite target sweeps to find each policy's
//! failure knee (recorded in ENVELOPES.md):
//!
//! * [`FragAttacker`] pessimizes the free-memory fragmentation index
//!   (FMFI): it backs a large arena, then frees everything *except one
//!   pinned page per 2 MB region*, leaving the buddy allocator with
//!   plenty of free memory but no contiguity. Intensity is the fraction
//!   of the arena's regions attacked this way; the rest are handed back
//!   whole, so intensity scales fragmentation while the attacker's
//!   resident footprint stays a handful of pins.
//! * [`BloatAttacker`] weaponizes bloat *recovery*: it grows a fully
//!   written, dense arena — every one of its pages non-zero, so the
//!   recovery daemon can never reclaim anything *from it* — until
//!   machine utilization crosses the recovery watermark. The only
//!   zero-filled huge pages on the machine then belong to the co-running
//!   victim (the free tails inside its fault-time huge pages), so
//!   HawkEye's recovery demotes the *victim's* huge pages to feed the
//!   attacker, while Linux-2MB simply OOM-kills the attacker and the
//!   victim keeps its huge pages. Intensity scales the grown footprint.

use crate::content::DirtModel;
use hawkeye_kernel::rng::SplitMix64;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};

/// Base pages per 2 MB region.
const REGION_PAGES: u64 = 512;

/// Pins one page per region and frees the rest, destroying contiguity.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::FragAttacker;
/// use hawkeye_kernel::Workload;
///
/// let mut a = FragAttacker::new(8, 1.0, 50, 7);
/// assert_eq!(a.name(), "frag-attacker");
/// assert!(a.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct FragAttacker {
    regions: u64,
    /// Regions attacked (pin + free); the rest stay fully backed.
    attacked: u64,
    /// The pinned page offset inside each attacked region.
    pins: Vec<u64>,
    /// Steady-state keep-warm rounds after the attack is planted.
    rounds_left: u64,
    next_region: u64,
    phase: u8,
    dirt: DirtModel,
}

impl FragAttacker {
    /// An attacker over `regions` 2 MB regions; `intensity` in `[0, 1]`
    /// is the fraction of regions shattered (clamped).
    pub fn new(regions: u64, intensity: f64, rounds: u64, seed: u64) -> Self {
        assert!(regions > 0, "empty arena");
        let attacked = ((regions as f64 * intensity.clamp(0.0, 1.0)).round() as u64).min(regions);
        let mut rng = SplitMix64::new(seed);
        // Pins stay off the region edges so both freed spans are
        // non-empty and never spill into a neighbouring region.
        let pins = (0..attacked)
            .map(|_| 1 + rng.below(REGION_PAGES - 2))
            .collect();
        FragAttacker {
            regions,
            attacked,
            pins,
            rounds_left: rounds,
            next_region: 0,
            phase: 0,
            dirt: DirtModel::paper_average(seed),
        }
    }

    /// Arena footprint in base pages.
    pub fn pages(&self) -> u64 {
        self.regions * REGION_PAGES
    }

    /// Regions shattered by the attack.
    pub fn attacked_regions(&self) -> u64 {
        self.attacked
    }
}

impl Workload for FragAttacker {
    fn name(&self) -> &str {
        "frag-attacker"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        match self.phase {
            0 => {
                self.phase = 1;
                Some(MemOp::Mmap {
                    start: Vpn(0),
                    pages: self.pages(),
                    kind: VmaKind::Anon,
                })
            }
            1 => {
                self.phase = 2;
                // Back and dirty the whole arena so the frames the frees
                // return are spread across every buddy block.
                Some(MemOp::TouchRange {
                    start: Vpn(0),
                    pages: self.pages(),
                    write: true,
                    think: 10,
                    stride: 1,
                    repeats: 1,
                })
            }
            2 => {
                // Shatter one region per op: free everything around the
                // pinned page (two MADV_DONTNEED spans), keeping the pin
                // resident so the buddy can never reassemble the block.
                // Non-attacked regions are handed back whole — the attack
                // knob shapes *fragmentation*, not footprint.
                if self.next_region == self.regions {
                    self.phase = 3;
                    return self.next_op();
                }
                let r = self.next_region;
                self.next_region += 1;
                let base = r * REGION_PAGES;
                if r >= self.attacked {
                    return Some(MemOp::Madvise {
                        start: Vpn(base),
                        pages: REGION_PAGES,
                    });
                }
                let pin = self.pins[r as usize];
                // Free the span below the pin this op; above it next.
                self.phase = 20;
                Some(MemOp::Madvise {
                    start: Vpn(base),
                    pages: pin,
                })
            }
            20 => {
                self.phase = 2;
                let r = self.next_region - 1;
                let base = r * REGION_PAGES;
                let pin = self.pins[r as usize];
                Some(MemOp::Madvise {
                    start: Vpn(base + pin + 1),
                    pages: REGION_PAGES - pin - 1,
                })
            }
            _ => {
                if self.rounds_left == 0 {
                    return None;
                }
                self.rounds_left -= 1;
                // Keep the pins warm so reclaim never evicts them.
                let vpns: Vec<Vpn> = self
                    .pins
                    .iter()
                    .enumerate()
                    .map(|(r, pin)| Vpn(r as u64 * REGION_PAGES + pin))
                    .collect();
                if vpns.is_empty() {
                    // Intensity 0: nothing pinned, just idle compute.
                    return Some(MemOp::Compute { cycles: 200_000 });
                }
                Some(MemOp::TouchList {
                    vpns,
                    write: true,
                    think: 50,
                })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

/// Grows a dense, unrecoverable arena to point bloat recovery at the
/// victim.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::BloatAttacker;
/// use hawkeye_kernel::Workload;
///
/// let mut a = BloatAttacker::new(32, 0.5, 20, 9);
/// assert_eq!(a.name(), "bloat-attacker");
/// assert!(a.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct BloatAttacker {
    /// Regions actually grown (scaled by intensity; 0 at intensity 0).
    regions: u64,
    /// Growth cursor: next region to write-fill.
    grown: u64,
    rounds_left: u64,
    phase: u8,
    dirt: DirtModel,
}

impl BloatAttacker {
    /// An attacker with a maximum arena of `max_regions` 2 MB regions;
    /// `intensity` in `[0, 1]` scales how many are grown (0 means the
    /// attacker only idles — the unattacked control point).
    pub fn new(max_regions: u64, intensity: f64, rounds: u64, seed: u64) -> Self {
        assert!(max_regions > 0, "empty arena");
        let regions =
            ((max_regions as f64 * intensity.clamp(0.0, 1.0)).round() as u64).min(max_regions);
        BloatAttacker {
            regions,
            grown: 0,
            rounds_left: rounds,
            phase: 0,
            dirt: DirtModel::paper_average(seed),
        }
    }

    /// Grown arena footprint in base pages.
    pub fn pages(&self) -> u64 {
        self.regions * REGION_PAGES
    }
}

impl Workload for BloatAttacker {
    fn name(&self) -> &str {
        "bloat-attacker"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        match self.phase {
            0 => {
                self.phase = 1;
                if self.regions == 0 {
                    return self.next_op();
                }
                Some(MemOp::Mmap {
                    start: Vpn(0),
                    pages: self.pages(),
                    kind: VmaKind::Anon,
                })
            }
            1 => {
                // Grow one region per op, writing every page: dense and
                // non-zero throughout, so the recovery daemon finds
                // nothing reclaimable here — all the pressure it relieves
                // must come out of someone else's huge pages.
                if self.grown == self.regions {
                    self.phase = 2;
                    return self.next_op();
                }
                let r = self.grown;
                self.grown += 1;
                Some(MemOp::TouchRange {
                    start: Vpn(r * REGION_PAGES),
                    pages: REGION_PAGES,
                    write: true,
                    think: 10,
                    stride: 1,
                    repeats: 1,
                })
            }
            _ => {
                if self.rounds_left == 0 {
                    return None;
                }
                self.rounds_left -= 1;
                if self.regions == 0 {
                    // Intensity 0: no footprint, just idle compute.
                    return Some(MemOp::Compute { cycles: 200_000 });
                }
                // Keep-warm reads over the whole arena: stays resident
                // and hot for as long as the victim runs.
                Some(MemOp::TouchRange {
                    start: Vpn(0),
                    pages: self.pages(),
                    write: false,
                    think: 4,
                    stride: 1,
                    repeats: 1,
                })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn frag_intensity_scales_attacked_regions() {
        assert_eq!(FragAttacker::new(16, 0.0, 1, 7).attacked_regions(), 0);
        assert_eq!(FragAttacker::new(16, 0.5, 1, 7).attacked_regions(), 8);
        assert_eq!(FragAttacker::new(16, 1.0, 1, 7).attacked_regions(), 16);
        assert_eq!(
            FragAttacker::new(16, 9.0, 1, 7).attacked_regions(),
            16,
            "clamped"
        );
    }

    #[test]
    fn frag_attack_leaves_one_pin_per_region() {
        let mut a = FragAttacker::new(4, 1.0, 0, 7);
        let _ = a.next_op(); // mmap
        let _ = a.next_op(); // init
        let mut freed = [0u64; 4];
        while let Some(op) = a.next_op() {
            let MemOp::Madvise { start, pages } = op else {
                panic!("attack phase must madvise, got {op:?}")
            };
            freed[(start.0 / REGION_PAGES) as usize] += pages;
        }
        for (r, f) in freed.iter().enumerate() {
            // Both spans together free all but the pin.
            assert_eq!(*f, REGION_PAGES - 1, "region {r} freed {f}");
        }
    }

    #[test]
    fn frag_unattacked_regions_are_freed_whole() {
        let mut a = FragAttacker::new(4, 0.5, 0, 7);
        let _ = a.next_op(); // mmap
        let _ = a.next_op(); // init
        let mut whole = 0;
        while let Some(op) = a.next_op() {
            let MemOp::Madvise { start, pages } = op else {
                panic!("attack phase must madvise, got {op:?}")
            };
            if pages == REGION_PAGES {
                assert!(
                    start.0 / REGION_PAGES >= 2,
                    "whole frees are the unattacked tail"
                );
                whole += 1;
            }
        }
        assert_eq!(whole, 2, "both unattacked regions handed back whole");
    }

    #[test]
    fn frag_shatters_contiguity_in_simulator() {
        // A 24 MiB machine mostly covered by a 20 MiB arena: the pins
        // must leave nearly all free memory below the huge order.
        let mut sim = Simulator::new(KernelConfig::with_mib(24), Box::new(BasePagesOnly));
        // Step in small slices and observe the machine once the attack
        // is planted (all frees done, one pin per region resident).
        let pid = sim.spawn(Box::new(FragAttacker::new(10, 1.0, 100_000, 7)));
        let mut planted = false;
        for _ in 0..1000 {
            sim.run_for(hawkeye_metrics::Cycles::from_millis(5));
            let p = sim.machine().process(pid).unwrap();
            assert!(!p.is_oom());
            if p.is_finished() {
                break;
            }
            if p.space().rss_pages() == 10 {
                planted = true;
                break;
            }
        }
        assert!(planted, "attack never reached steady state");
        assert!(sim.machine().fmfi() > 0.7, "fmfi {}", sim.machine().fmfi());
    }

    #[test]
    fn bloat_grows_dense_writes_then_keeps_warm() {
        let mut a = BloatAttacker::new(8, 1.0, 3, 9);
        let _ = a.next_op(); // mmap
        for r in 0..8u64 {
            let Some(MemOp::TouchRange {
                start,
                pages,
                stride,
                write,
                ..
            }) = a.next_op()
            else {
                panic!("expected dense growth op {r}")
            };
            assert_eq!(
                (start.0, pages, stride, write),
                (r * REGION_PAGES, REGION_PAGES, 1, true)
            );
        }
        let mut sweeps = 0;
        while let Some(MemOp::TouchRange {
            pages,
            stride,
            write,
            ..
        }) = a.next_op()
        {
            assert_eq!((pages, stride, write), (8 * REGION_PAGES, 1, false));
            sweeps += 1;
        }
        assert_eq!(sweeps, 3);
    }

    #[test]
    fn bloat_intensity_scales_footprint() {
        assert_eq!(BloatAttacker::new(32, 1.0, 1, 9).pages(), 32 * REGION_PAGES);
        assert_eq!(BloatAttacker::new(32, 0.25, 1, 9).pages(), 8 * REGION_PAGES);
        assert_eq!(
            BloatAttacker::new(32, 0.0, 1, 9).pages(),
            0,
            "intensity 0 grows nothing"
        );
    }

    #[test]
    fn bloat_at_intensity_zero_only_computes() {
        let mut a = BloatAttacker::new(8, 0.0, 2, 9);
        for _ in 0..2 {
            let Some(MemOp::Compute { .. }) = a.next_op() else {
                panic!("intensity-0 attacker must idle")
            };
        }
        assert!(a.next_op().is_none());
    }

    #[test]
    fn bloat_attacker_pages_are_never_recoverable() {
        // Dense + written everywhere: after the attack is planted, the
        // attacker holds no zero pages for bloat recovery to reclaim.
        let mut sim = Simulator::new(KernelConfig::with_mib(24), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(BloatAttacker::new(4, 1.0, 10, 9)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished() && !p.is_oom());
        let pm = sim.machine().pm();
        let zero_owned = (0..sim.machine().config().frames)
            .filter(|i| {
                let f = pm.frame(hawkeye_mem::Pfn(*i));
                f.owner().is_some_and(|o| o.pid == pid) && f.is_zeroed()
            })
            .count();
        assert_eq!(zero_owned, 0, "attacker must hold no zero pages");
    }
}
