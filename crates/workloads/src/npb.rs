//! NAS-Parallel-Benchmark-shaped kernels (Table 3, Table 9).
//!
//! Table 3's lesson is that working-set size does not predict MMU
//! overhead: `cg.D` (16 GB, random gathers) spends 39 % of its cycles in
//! page walks while `mg.D` (24 GB, sequential stencils) spends ~1 %.
//! These kernels reproduce the pattern *shapes* at scaled footprints.

use crate::content::DirtModel;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_kernel::rng::SplitMix64;

const CHUNK: u64 = 2048;

/// Access pattern of an [`NpbKernel`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pattern {
    /// Sequential sweeps with intra-page reuse (mg, lu, ua — prefetch
    /// friendly, negligible walk cost).
    Sequential {
        /// Accesses per page per sweep.
        repeats: u32,
    },
    /// Uniform random gathers over a fraction of the footprint (cg —
    /// worst-case TLB pressure).
    Random {
        /// Fraction of the footprint forming the working set.
        wss: f64,
    },
    /// Strided sweeps (bt, sp — moderate pressure).
    Strided {
        /// Stride between touched pages.
        stride: u64,
        /// Accesses per touched page.
        repeats: u32,
    },
}

/// One NPB-like kernel.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::NpbKernel;
/// use hawkeye_kernel::Workload;
///
/// let mut cg = NpbKernel::cg(16, 100);
/// assert_eq!(cg.name(), "cg");
/// assert!(cg.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct NpbKernel {
    name: String,
    regions: u64,
    pattern: Pattern,
    iters_left: u64,
    think: u32,
    phase: u8,
    cursor: u64,
    rng: SplitMix64,
    dirt: DirtModel,
}

impl NpbKernel {
    /// Fully parameterized constructor. `regions` are 2 MB units of
    /// footprint; `iters` are pattern chunks after initialization.
    pub fn new(
        name: impl Into<String>,
        regions: u64,
        pattern: Pattern,
        iters: u64,
        think: u32,
        seed: u64,
    ) -> Self {
        NpbKernel {
            name: name.into(),
            regions,
            pattern,
            iters_left: iters,
            think,
            phase: 0,
            cursor: 0,
            rng: SplitMix64::new(seed),
            dirt: DirtModel::paper_average(seed ^ 0xbeef),
        }
    }

    /// cg: conjugate gradient — random sparse gathers over ~half the
    /// footprint (the paper's 16 GB RSS / 7–8 GB WSS).
    pub fn cg(regions: u64, iters: u64) -> Self {
        Self::new("cg", regions, Pattern::Random { wss: 0.5 }, iters, 60, 201)
    }

    /// mg: multigrid — sequential stencil sweeps (24 GB, <1 % overhead).
    pub fn mg(regions: u64, iters: u64) -> Self {
        Self::new("mg", regions, Pattern::Sequential { repeats: 64 }, iters, 30, 202)
    }

    /// bt: block tridiagonal — strided plane sweeps.
    pub fn bt(regions: u64, iters: u64) -> Self {
        Self::new("bt", regions, Pattern::Strided { stride: 7, repeats: 6 }, iters, 50, 203)
    }

    /// sp: scalar pentadiagonal — strided sweeps, lighter than bt.
    pub fn sp(regions: u64, iters: u64) -> Self {
        Self::new("sp", regions, Pattern::Strided { stride: 5, repeats: 12 }, iters, 40, 204)
    }

    /// lu: lower-upper solver — mostly sequential.
    pub fn lu(regions: u64, iters: u64) -> Self {
        Self::new("lu", regions, Pattern::Sequential { repeats: 48 }, iters, 40, 205)
    }

    /// ua: unstructured adaptive — sequential with small working set.
    pub fn ua(regions: u64, iters: u64) -> Self {
        Self::new("ua", regions, Pattern::Sequential { repeats: 32 }, iters, 40, 206)
    }

    /// ft: FFT — phased sweeps with moderate reuse.
    pub fn ft(regions: u64, iters: u64) -> Self {
        Self::new("ft", regions, Pattern::Strided { stride: 3, repeats: 10 }, iters, 40, 207)
    }

    /// Footprint in base pages.
    pub fn pages(&self) -> u64 {
        self.regions * 512
    }
}

impl Workload for NpbKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        let pages = self.pages();
        match self.phase {
            0 => {
                self.phase = 1;
                Some(MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon })
            }
            1 => {
                self.phase = 2;
                Some(MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 20, stride: 1 , repeats: 1})
            }
            _ => {
                if self.iters_left == 0 {
                    return None;
                }
                self.iters_left -= 1;
                match self.pattern {
                    Pattern::Sequential { repeats } => {
                        let span = CHUNK.min(pages - self.cursor);
                        let start = Vpn(self.cursor);
                        self.cursor = (self.cursor + span) % pages;
                        // Intra-page reuse: each page is accessed
                        // `repeats` times, amortizing its TLB miss — the
                        // prefetch-friendliness of §2.4.
                        Some(MemOp::TouchRange {
                            start,
                            pages: span,
                            write: false,
                            think: self.think,
                            stride: 1,
                            repeats,
                        })
                    }
                    Pattern::Random { wss } => {
                        let span = ((pages as f64) * wss) as u64;
                        let base = pages - span;
                        let vpns: Vec<Vpn> = (0..CHUNK)
                            .map(|_| Vpn(base + self.rng.below(span.max(1))))
                            .collect();
                        Some(MemOp::TouchList { vpns, write: false, think: self.think })
                    }
                    Pattern::Strided { stride, repeats } => {
                        let count = CHUNK / 2;
                        let start = Vpn(self.cursor % pages);
                        self.cursor = (self.cursor + count * stride) % pages;
                        let span_ok = start.0 + (count - 1) * stride < pages;
                        let count = if span_ok { count } else { (pages - start.0) / stride.max(1) };
                        Some(MemOp::TouchRange {
                            start,
                            pages: count.max(1),
                            write: false,
                            think: self.think,
                            stride,
                            repeats,
                        })
                    }
                }
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    fn mmu_overhead(w: Box<dyn Workload>) -> f64 {
        let mut sim = Simulator::new(KernelConfig::with_mib(1024), Box::new(BasePagesOnly));
        let pid = sim.spawn(w);
        sim.run();
        sim.machine().mmu().lifetime(pid).mmu_overhead()
    }

    #[test]
    fn cg_is_tlb_bound_and_mg_is_not() {
        // Table 3's contrast, scaled: cg (random) vs mg (sequential) with
        // mg having the LARGER footprint.
        let cg = mmu_overhead(Box::new(NpbKernel::cg(96, 400)));
        let mg = mmu_overhead(Box::new(NpbKernel::mg(128, 400)));
        assert!(cg > 0.15, "cg should be walk-bound: {cg}");
        assert!(mg < 0.05, "mg should be cheap despite larger WSS: {mg}");
        assert!(cg > 4.0 * mg, "cg {cg} vs mg {mg}");
    }

    #[test]
    fn strided_kernels_fall_in_between() {
        let bt = mmu_overhead(Box::new(NpbKernel::bt(80, 300)));
        let mg = mmu_overhead(Box::new(NpbKernel::mg(80, 300)));
        let cg = mmu_overhead(Box::new(NpbKernel::cg(80, 300)));
        assert!(bt >= mg, "bt {bt} >= mg {mg}");
        assert!(bt <= cg, "bt {bt} <= cg {cg}");
    }

    #[test]
    fn all_kernels_complete() {
        for w in [
            NpbKernel::cg(4, 10),
            NpbKernel::mg(4, 10),
            NpbKernel::bt(4, 10),
            NpbKernel::sp(4, 10),
            NpbKernel::lu(4, 10),
            NpbKernel::ua(4, 10),
            NpbKernel::ft(4, 10),
        ] {
            let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
            let pid = sim.spawn(Box::new(w));
            sim.run();
            let p = sim.machine().process(pid).unwrap();
            assert!(p.is_finished() && !p.is_oom(), "{} stuck", p.name());
            assert_eq!(p.stats().faults, 4 * 512);
        }
    }
}
