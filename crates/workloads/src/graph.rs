//! Graph500/XSBench-shaped workloads.
//!
//! Fig. 6 of the paper shows that both applications concentrate their hot
//! data in the **high** end of their virtual address spaces — which is
//! why Linux's and Ingens' sequential low-to-high VA promotion takes
//! hundreds of seconds to reach the regions that matter, while HawkEye's
//! access-coverage index finds them immediately.

use crate::content::DirtModel;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_kernel::rng::SplitMix64;

const CHUNK: usize = 2048;

/// A workload with a configurable hot-region placement and skew.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::HotspotWorkload;
/// use hawkeye_kernel::Workload;
///
/// let mut g = HotspotWorkload::graph500(16, 200);
/// assert_eq!(g.name(), "graph500");
/// assert!(g.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct HotspotWorkload {
    name: String,
    regions: u64,
    /// Hot regions occupy the top `hot_regions` of the VA space.
    hot_regions: u64,
    /// Probability that an access targets the hot set.
    hot_fraction: f64,
    iters_left: u64,
    think: u32,
    phase: u8,
    rng: SplitMix64,
    dirt: DirtModel,
}

impl HotspotWorkload {
    /// Fully parameterized constructor.
    ///
    /// # Panics
    ///
    /// Panics if `hot_regions` is 0 or exceeds `regions`.
    pub fn new(
        name: impl Into<String>,
        regions: u64,
        hot_regions: u64,
        hot_fraction: f64,
        iters: u64,
        think: u32,
        seed: u64,
    ) -> Self {
        assert!(hot_regions > 0 && hot_regions <= regions, "bad hot set");
        HotspotWorkload {
            name: name.into(),
            regions,
            hot_regions,
            hot_fraction,
            iters_left: iters,
            think,
            phase: 0,
            rng: SplitMix64::new(seed),
            dirt: DirtModel::paper_average(seed),
        }
    }

    /// Graph500-like: BFS over a compressed graph; hot frontier and
    /// degree arrays live in the top quarter of the VA space.
    pub fn graph500(regions: u64, iters: u64) -> Self {
        let hot = (regions / 4).max(1);
        Self::new("graph500", regions, hot, 0.85, iters, 60, 101)
    }

    /// XSBench-like: Monte Carlo cross-section lookups; a hot nuclide
    /// grid at high VAs with random energy lookups.
    pub fn xsbench(regions: u64, iters: u64) -> Self {
        let hot = (regions / 5).max(1);
        Self::new("xsbench", regions, hot, 0.80, iters, 80, 102)
    }

    /// PageRank-like: near-uniform sweeps over edges (no placement skew).
    pub fn pagerank(regions: u64, iters: u64) -> Self {
        Self::new("pagerank", regions, regions, 1.0, iters, 60, 103)
    }

    /// Total footprint in base pages.
    pub fn pages(&self) -> u64 {
        self.regions * 512
    }
}

impl Workload for HotspotWorkload {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        match self.phase {
            0 => {
                self.phase = 1;
                Some(MemOp::Mmap { start: Vpn(0), pages: self.pages(), kind: VmaKind::Anon })
            }
            1 => {
                self.phase = 2;
                // Initialize the whole graph (the paper's workloads
                // allocate all memory up front, in the fragmented state).
                Some(MemOp::TouchRange {
                    start: Vpn(0),
                    pages: self.pages(),
                    write: true,
                    think: 20,
                    stride: 1,
                    repeats: 1,
                })
            }
            _ => {
                if self.iters_left == 0 {
                    return None;
                }
                self.iters_left -= 1;
                let pages = self.pages();
                let hot_start = (self.regions - self.hot_regions) * 512;
                let vpns: Vec<Vpn> = (0..CHUNK)
                    .map(|_| {
                        if self.rng.unit() < self.hot_fraction {
                            Vpn(hot_start + self.rng.below(pages - hot_start))
                        } else {
                            Vpn(self.rng.below(pages))
                        }
                    })
                    .collect();
                Some(MemOp::TouchList { vpns, write: false, think: self.think })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn hot_accesses_concentrate_in_high_vas() {
        let mut g = HotspotWorkload::graph500(16, 50);
        let _ = g.next_op(); // mmap
        let _ = g.next_op(); // init
        let mut hot = 0u64;
        let mut total = 0u64;
        let hot_start = 12 * 512;
        while let Some(MemOp::TouchList { vpns, .. }) = g.next_op() {
            for v in vpns {
                total += 1;
                if v.0 >= hot_start {
                    hot += 1;
                }
            }
        }
        let frac = hot as f64 / total as f64;
        // 85% targeted + 25%-of-space uniform remainder ≈ 0.89
        assert!((0.84..0.94).contains(&frac), "hot fraction {frac}");
    }

    #[test]
    fn pagerank_is_uniform() {
        let mut g = HotspotWorkload::pagerank(8, 50);
        let _ = g.next_op();
        let _ = g.next_op();
        let mut lower = 0u64;
        let mut total = 0u64;
        while let Some(MemOp::TouchList { vpns, .. }) = g.next_op() {
            for v in vpns {
                total += 1;
                lower += (v.0 < 4 * 512) as u64;
            }
        }
        let frac = lower as f64 / total as f64;
        assert!((0.45..0.55).contains(&frac), "uniform split {frac}");
    }

    #[test]
    fn runs_to_completion_in_simulator() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(HotspotWorkload::xsbench(8, 20)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished() && !p.is_oom());
        assert_eq!(p.stats().faults, 8 * 512);
        assert_eq!(p.stats().touches, 8 * 512 + 20 * CHUNK as u64);
    }

    #[test]
    #[should_panic(expected = "bad hot set")]
    fn oversized_hot_set_rejected() {
        let _ = HotspotWorkload::new("x", 4, 5, 0.5, 1, 0, 0);
    }
}
