//! A64FX/FLASH-style multi-grid stencil sweeps.
//!
//! Models the memory behaviour of an explicit-hydro multigrid code
//! (FLASH's Sedov-style setup on A64FX, arXiv 2309.04652): a V-cycle
//! walks a hierarchy of grids — the finest grid dominating the footprint
//! — and every sweep is a *sequential* pass with a read-modify-write per
//! cell. Sequential sweeps are the TLB's best case (one walk per page,
//! prefetch-friendly), so huge pages help far less than on
//! pointer-chasing codes: the study measures dramatic dTLB-miss
//! reductions but only single-digit-percent runtime gains, and that gap
//! is exactly what this family pins in REPORT.md.

use crate::content::DirtModel;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};

/// A multi-grid stencil sweep workload.
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::StencilSweep;
/// use hawkeye_kernel::Workload;
///
/// let mut w = StencilSweep::flash(16, 4);
/// assert_eq!(w.name(), "flash-mg");
/// assert!(w.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct StencilSweep {
    name: String,
    /// Pages per grid level, finest first.
    grid_pages: Vec<u64>,
    /// First page of each grid in the arena.
    grid_starts: Vec<u64>,
    /// Compute cycles per cell update (the stencil's FLOPs).
    think: u32,
    cycles_left: u64,
    /// Position inside the current V-cycle: 0..2L-1 (down then up).
    leg: usize,
    phase: u8,
    dirt: DirtModel,
}

impl StencilSweep {
    /// Fully parameterized constructor: the finest grid spans `regions`
    /// 2 MB regions; each coarser level is 4× smaller (2-D coarsening)
    /// down to a single page, `cycles` full V-cycles.
    ///
    /// # Panics
    ///
    /// Panics if `regions` is 0.
    pub fn new(name: impl Into<String>, regions: u64, cycles: u64, think: u32, seed: u64) -> Self {
        assert!(regions > 0, "empty grid");
        let mut sizes = vec![regions * 512];
        while *sizes.last().expect("non-empty") > 1 {
            sizes.push((sizes.last().expect("non-empty") / 4).max(1));
        }
        let mut starts = Vec::with_capacity(sizes.len());
        let mut at = 0u64;
        for s in &sizes {
            starts.push(at);
            at += s;
        }
        StencilSweep {
            name: name.into(),
            grid_pages: sizes,
            grid_starts: starts,
            think,
            cycles_left: cycles,
            leg: 0,
            phase: 0,
            dirt: DirtModel::paper_average(seed),
        }
    }

    /// The FLASH-like shape: a page's worth of 7-point cell updates per
    /// touch (hundreds of FLOP cycles — the term the TLB walk amortizes
    /// against), seeded to the study's Sedov setup.
    pub fn flash(regions: u64, cycles: u64) -> Self {
        Self::new("flash-mg", regions, cycles, 400, 501)
    }

    /// Total arena footprint in base pages (all grid levels).
    pub fn pages(&self) -> u64 {
        self.grid_pages.iter().sum()
    }

    /// Number of grid levels in the hierarchy.
    pub fn levels(&self) -> usize {
        self.grid_pages.len()
    }

    /// Grid index for one leg of the V-cycle (down 0..L-1, up L-2..0).
    fn leg_grid(&self, leg: usize) -> usize {
        let l = self.levels();
        if leg < l {
            leg
        } else {
            2 * l - 2 - leg
        }
    }
}

impl Workload for StencilSweep {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        match self.phase {
            0 => {
                self.phase = 1;
                Some(MemOp::Mmap {
                    start: Vpn(0),
                    pages: self.pages(),
                    kind: VmaKind::Anon,
                })
            }
            1 => {
                self.phase = 2;
                // Initial conditions: write the whole hierarchy once.
                Some(MemOp::TouchRange {
                    start: Vpn(0),
                    pages: self.pages(),
                    write: true,
                    think: 20,
                    stride: 1,
                    repeats: 1,
                })
            }
            _ => {
                if self.cycles_left == 0 {
                    return None;
                }
                let grid = self.leg_grid(self.leg);
                let legs = 2 * self.levels() - 1;
                self.leg += 1;
                if self.leg == legs {
                    self.leg = 0;
                    self.cycles_left -= 1;
                }
                // One smoothing sweep: sequential read-modify-write over
                // the grid (2 accesses per cell page).
                Some(MemOp::TouchRange {
                    start: Vpn(self.grid_starts[grid]),
                    pages: self.grid_pages[grid],
                    write: true,
                    think: self.think,
                    stride: 1,
                    repeats: 2,
                })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn hierarchy_coarsens_4x_to_a_point() {
        let w = StencilSweep::flash(8, 1);
        assert_eq!(w.grid_pages, vec![4096, 1024, 256, 64, 16, 4, 1]);
        assert_eq!(w.levels(), 7);
        assert_eq!(w.pages(), 5461);
    }

    #[test]
    fn v_cycle_walks_down_then_up() {
        let mut w = StencilSweep::new("s", 2, 1, 0, 0);
        let _ = w.next_op(); // mmap
        let _ = w.next_op(); // init
        let mut sweep_starts = Vec::new();
        while let Some(MemOp::TouchRange { start, .. }) = w.next_op() {
            sweep_starts.push(start.0);
        }
        // Down legs visit finest->coarsest starts, up legs mirror back.
        let starts = w.grid_starts.clone();
        let mut expect: Vec<u64> = starts.clone();
        expect.extend(starts.iter().rev().skip(1));
        assert_eq!(sweep_starts, expect);
    }

    #[test]
    fn sweeps_are_sequential_unit_stride() {
        let mut w = StencilSweep::flash(4, 2);
        let _ = w.next_op();
        let _ = w.next_op();
        while let Some(op) = w.next_op() {
            let MemOp::TouchRange {
                stride,
                repeats,
                write,
                ..
            } = op
            else {
                panic!("stencil sweeps must be ranges, got {op:?}")
            };
            assert_eq!(stride, 1);
            assert_eq!(repeats, 2);
            assert!(write);
        }
    }

    #[test]
    fn runs_to_completion_in_simulator() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(StencilSweep::flash(4, 2)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert!(p.is_finished() && !p.is_oom());
        // The init pass faults every page exactly once; sweeps re-touch.
        assert_eq!(p.stats().faults, StencilSweep::flash(4, 2).pages());
    }

    #[test]
    #[should_panic(expected = "empty grid")]
    fn zero_regions_rejected() {
        let _ = StencilSweep::new("s", 0, 1, 0, 0);
    }
}
