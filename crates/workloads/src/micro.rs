//! Microbenchmarks: alloc-touch (Table 1), sequential/random scanners
//! (Table 9), spin-up (Table 8), SparseHash, HACC-IO.

use crate::content::DirtModel;
use hawkeye_kernel::{MemOp, Workload};
use hawkeye_vm::{VmaKind, Vpn};
use hawkeye_kernel::rng::SplitMix64;
use std::collections::VecDeque;

const CHUNK: u64 = 4096;

/// The Table 1 microbenchmark: allocate a buffer, touch one byte in every
/// base page, free it; repeat for several runs (the paper uses a 10 GB
/// buffer × 10 runs ≈ 100 GB of allocation).
///
/// # Examples
///
/// ```
/// use hawkeye_workloads::AllocTouch;
/// use hawkeye_kernel::Workload;
///
/// let mut w = AllocTouch::new(1024, 2, 1150);
/// assert_eq!(w.name(), "alloc-touch");
/// assert!(w.next_op().is_some());
/// ```
#[derive(Debug)]
pub struct AllocTouch {
    pages: u64,
    think: u32,
    runs_left: u32,
    phase: u8,
    dirt: DirtModel,
}

impl AllocTouch {
    /// `pages` per run, `runs` runs, `think` compute cycles per touch.
    pub fn new(pages: u64, runs: u32, think: u32) -> Self {
        AllocTouch { pages, think, runs_left: runs, phase: 0, dirt: DirtModel::paper_average(11) }
    }
}

impl Workload for AllocTouch {
    fn name(&self) -> &str {
        "alloc-touch"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if self.runs_left == 0 {
            return None;
        }
        let op = match self.phase {
            0 => MemOp::Mmap { start: Vpn(0), pages: self.pages, kind: VmaKind::Anon },
            1 => MemOp::TouchRange {
                start: Vpn(0),
                pages: self.pages,
                write: true,
                think: self.think,
                stride: 1,
                repeats: 1,
            },
            _ => MemOp::Munmap { start: Vpn(0) },
        };
        if self.phase == 2 {
            self.phase = 0;
            self.runs_left -= 1;
        } else {
            self.phase += 1;
        }
        Some(op)
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

/// Access pattern of a [`PatternScan`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanKind {
    /// Sequential sweeps with intra-page locality (prefetch-friendly;
    /// negligible MMU overhead regardless of footprint — §2.4).
    Sequential,
    /// Uniform random page accesses (worst-case TLB pressure).
    Random,
}

/// The `sequential(4GB)` / `random(4GB)` workloads of Table 9.
#[derive(Debug)]
pub struct PatternScan {
    name: String,
    pages: u64,
    kind: ScanKind,
    accesses_left: u64,
    think: u32,
    started: bool,
    cursor: u64,
    rng: SplitMix64,
    dirt: DirtModel,
}

impl PatternScan {
    /// A sequential scanner over `pages`, performing `accesses` page
    /// touches in repeated sweeps with `repeats` accesses per page.
    pub fn sequential(pages: u64, accesses: u64, think: u32) -> Self {
        PatternScan {
            name: "sequential".into(),
            pages,
            kind: ScanKind::Sequential,
            accesses_left: accesses,
            think,
            started: false,
            cursor: 0,
            rng: SplitMix64::new(21),
            dirt: DirtModel::paper_average(21),
        }
    }

    /// A uniform random scanner over `pages` performing `accesses` single
    /// page touches.
    pub fn random(pages: u64, accesses: u64, think: u32) -> Self {
        PatternScan {
            name: "random".into(),
            pages,
            kind: ScanKind::Random,
            accesses_left: accesses,
            think,
            started: false,
            cursor: 0,
            rng: SplitMix64::new(22),
            dirt: DirtModel::paper_average(22),
        }
    }
}

impl Workload for PatternScan {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if !self.started {
            self.started = true;
            return Some(MemOp::Mmap { start: Vpn(0), pages: self.pages, kind: VmaKind::Anon });
        }
        if self.accesses_left == 0 {
            return None;
        }
        match self.kind {
            ScanKind::Sequential => {
                let span = CHUNK.min(self.pages - self.cursor).min(self.accesses_left.max(1));
                let start = Vpn(self.cursor);
                self.cursor = (self.cursor + span) % self.pages;
                self.accesses_left = self.accesses_left.saturating_sub(span);
                // Intra-page locality: 64 accesses per page amortize the
                // TLB miss (the prefetch-friendly shape of §2.4).
                Some(MemOp::TouchRange { start, pages: span, write: true, think: self.think, stride: 1, repeats: 64 })
            }
            ScanKind::Random => {
                let n = CHUNK.min(self.accesses_left);
                self.accesses_left -= n;
                let vpns: Vec<Vpn> =
                    (0..n).map(|_| Vpn(self.rng.below(self.pages))).collect();
                Some(MemOp::TouchList { vpns, write: false, think: self.think })
            }
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

/// VM/JVM spin-up (Table 8): allocate the whole heap and touch every page
/// as fast as possible — pure fault-path stress.
#[derive(Debug)]
pub struct Spinup {
    name: String,
    pages: u64,
    phase: u8,
    dirt: DirtModel,
}

impl Spinup {
    /// A spin-up of `pages` of heap, labeled `name` ("kvm-spinup", ...).
    pub fn new(name: impl Into<String>, pages: u64) -> Self {
        Spinup { name: name.into(), pages, phase: 0, dirt: DirtModel::paper_average(31) }
    }
}

impl Workload for Spinup {
    fn name(&self) -> &str {
        &self.name
    }

    fn next_op(&mut self) -> Option<MemOp> {
        self.phase += 1;
        match self.phase {
            1 => Some(MemOp::Mmap { start: Vpn(0), pages: self.pages, kind: VmaKind::Anon }),
            2 => Some(MemOp::TouchRange {
                start: Vpn(0),
                pages: self.pages,
                write: true,
                think: 0,
                stride: 1,
                repeats: 1,
            }),
            _ => None,
        }
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

/// SparseHash-like hash-map population (Table 8): repeated table doubling
/// — allocate a region twice the size, rehash (sequential writes), free
/// the old table. Fault-heavy with strong spatial locality.
#[derive(Debug)]
pub struct SparseHash {
    ops: VecDeque<MemOp>,
    dirt: DirtModel,
}

impl SparseHash {
    /// Builds a growth schedule from `initial_pages` doubling `doublings`
    /// times.
    pub fn new(initial_pages: u64, doublings: u32, think: u32) -> Self {
        let mut ops = VecDeque::new();
        let mut size = initial_pages;
        let mut base = 0u64;
        ops.push_back(MemOp::Mmap { start: Vpn(base), pages: size, kind: VmaKind::Anon });
        ops.push_back(MemOp::TouchRange { start: Vpn(base), pages: size, write: true, think, stride: 1 , repeats: 1});
        for _ in 0..doublings {
            let new_base = base + size;
            let new_size = size * 2;
            ops.push_back(MemOp::Mmap { start: Vpn(new_base), pages: new_size, kind: VmaKind::Anon });
            // Rehash: read old, write new.
            ops.push_back(MemOp::TouchRange { start: Vpn(base), pages: size, write: false, think, stride: 1 , repeats: 1});
            ops.push_back(MemOp::TouchRange { start: Vpn(new_base), pages: new_size, write: true, think, stride: 1 , repeats: 1});
            ops.push_back(MemOp::Munmap { start: Vpn(base) });
            base = new_base;
            size = new_size;
        }
        SparseHash { ops, dirt: DirtModel::new(6.0, 41) }
    }
}

impl Workload for SparseHash {
    fn name(&self) -> &str {
        "sparsehash"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        self.ops.pop_front()
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

/// HACC-IO-like in-memory file writer (Table 8): streams a particle
/// buffer into an in-memory filesystem — sequential writes over a large
/// fresh allocation, several passes.
#[derive(Debug)]
pub struct HaccIo {
    pages: u64,
    passes: u32,
    emitted_mmap: bool,
    pass: u32,
    dirt: DirtModel,
}

impl HaccIo {
    /// `pages` of buffer, written `passes` times.
    pub fn new(pages: u64, passes: u32) -> Self {
        HaccIo { pages, passes, emitted_mmap: false, pass: 0, dirt: DirtModel::new(3.0, 51) }
    }
}

impl Workload for HaccIo {
    fn name(&self) -> &str {
        "hacc-io"
    }

    fn next_op(&mut self) -> Option<MemOp> {
        if !self.emitted_mmap {
            self.emitted_mmap = true;
            return Some(MemOp::Mmap { start: Vpn(0), pages: self.pages, kind: VmaKind::Anon });
        }
        if self.pass >= self.passes {
            return None;
        }
        self.pass += 1;
        Some(MemOp::TouchRange { start: Vpn(0), pages: self.pages, write: true, think: 200, stride: 1 , repeats: 1})
    }

    fn dirt_offset(&mut self) -> u16 {
        self.dirt.sample()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{BasePagesOnly, KernelConfig, Simulator};

    #[test]
    fn alloc_touch_cycles_through_runs() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(AllocTouch::new(512, 3, 100)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 3 * 512, "memory refaults after each free");
        assert_eq!(sim.machine().pm().allocated_pages(), 1);
    }

    #[test]
    fn random_scan_touches_within_bounds() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(PatternScan::random(2048, 10_000, 50)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().accesses, 10_000);
        assert!(p.stats().faults <= 2048);
    }

    #[test]
    fn sequential_scan_wraps_over_footprint() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(PatternScan::sequential(1024, 3000, 10)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 1024, "faults only on the first sweep");
        assert_eq!(p.stats().touches, 3000);
    }

    #[test]
    fn random_has_higher_mmu_overhead_than_sequential() {
        // The §2.4 claim: access pattern, not footprint, determines MMU
        // overhead.
        let overhead = |w: Box<dyn Workload>| {
            let mut sim = Simulator::new(KernelConfig::with_mib(512), Box::new(BasePagesOnly));
            let pid = sim.spawn(w);
            sim.run();
            sim.machine().mmu().lifetime(pid).mmu_overhead()
        };
        // Long-running scans so steady-state accesses dominate the
        // one-time fault costs (the paper's scans run for minutes).
        let seq = overhead(Box::new(PatternScan::sequential(48 * 1024, 600_000, 30)));
        let rnd = overhead(Box::new(PatternScan::random(48 * 1024, 600_000, 30)));
        assert!(rnd > 5.0 * seq, "random {rnd} vs sequential {seq}");
        assert!(rnd > 0.2, "random scan should be TLB-bound: {rnd}");
        assert!(seq < 0.05, "sequential scan should be cheap: {seq}");
    }

    #[test]
    fn spinup_touches_everything_once() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(Spinup::new("kvm-spinup", 4096)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 4096);
        assert_eq!(p.stats().touches, 4096);
    }

    #[test]
    fn sparsehash_grows_and_frees() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(SparseHash::new(256, 3, 20)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        // Faults: 256 + 512 + 1024 + 2048 fresh tables.
        assert_eq!(p.stats().faults, 256 + 512 + 1024 + 2048);
        assert_eq!(sim.machine().pm().allocated_pages(), 1, "all freed at exit");
    }

    #[test]
    fn haccio_performs_passes() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(BasePagesOnly));
        let pid = sim.spawn(Box::new(HaccIo::new(1024, 3)));
        sim.run();
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().touches, 3 * 1024);
        assert_eq!(p.stats().faults, 1024);
    }
}
