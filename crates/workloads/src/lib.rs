//! Workload generators mirroring the paper's applications.
//!
//! The paper evaluates on real software (Redis, Graph500, XSBench, NPB,
//! SparseHash, HACC-IO, JVM/KVM spin-up) running on a 96 GB server. These
//! generators reproduce the *access-pattern shapes* those conclusions rest
//! on — footprints are scaled down (MB-scale) with ratios preserved:
//!
//! * [`micro`] — the Table 1 alloc-touch microbenchmark, sequential /
//!   random scanners (Table 9), VM/JVM spin-up, SparseHash, HACC-IO.
//! * [`redis`] — a key-value store with insert / delete / serve phases
//!   (Fig. 1's bloat experiment, Table 7, Table 8, the lightly-loaded
//!   server of Fig. 8).
//! * [`graph`] — Graph500/XSBench-like workloads whose **hot regions sit
//!   in high virtual addresses** (the property that defeats sequential-VA
//!   promotion in Figs. 5–6), plus a PageRank-like uniform scanner.
//! * [`npb`] — NAS-Parallel-Benchmark-shaped kernels (cg's random gather,
//!   mg's sequential sweeps, …) for Table 3.
//! * [`mod@census`] — 79 synthetic application profiles across 7 suites for
//!   Table 2's TLB-sensitivity census.
//! * [`content`] — first-non-zero-byte distributions (Fig. 3).
//!
//! Beyond the paper's own applications, three families probe where its
//! conclusions generalize (DESIGN.md §17):
//!
//! * [`oltp`] — a TPC-C-like B-tree buffer manager whose pointer-chasing
//!   root→leaf lookups are the TLB's worst case.
//! * [`stencil`] — A64FX/FLASH-style multi-grid stencil sweeps, the
//!   TLB's best case (sequential, prefetch-friendly).
//! * [`adversarial`] — attackers engineered to break the policies: an
//!   FMFI pessimizer and an access-coverage gamer, swept over intensity
//!   by the `adversarial` suite target to map each policy's failure
//!   envelope.

pub mod adversarial;
pub mod census;
pub mod content;
pub mod graph;
pub mod micro;
pub mod npb;
pub mod oltp;
pub mod redis;
pub mod stencil;

pub use adversarial::{BloatAttacker, FragAttacker};
pub use census::{census, AppProfile};
pub use content::DirtModel;
pub use graph::HotspotWorkload;
pub use micro::{AllocTouch, HaccIo, PatternScan, SparseHash, Spinup};
pub use npb::{NpbKernel, Pattern};
pub use oltp::BtreeOltp;
pub use redis::RedisKv;
pub use redis::RedisOp;
pub use stencil::StencilSweep;
