//! Property-based tests of the TLB hierarchy: inclusion-free timing
//! sanity, capacity bounds, invalidation completeness, and PMU accounting
//! conservation.

// Requires the external `proptest` crate; see the crate's Cargo.toml for
// how to re-enable. Default builds must work offline.
#![cfg(feature = "proptest")]
use hawkeye_metrics::Cycles;
use hawkeye_tlb::{Mmu, SetAssocTlb, TlbConfig};
use hawkeye_vm::{PageSize, Vpn};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// A set-associative TLB never exceeds capacity and always hits a key
    /// that was just inserted.
    #[test]
    fn tlb_capacity_and_recency(keys in proptest::collection::vec(0u64..10_000, 1..500)) {
        let mut t = SetAssocTlb::new(64, 4);
        for k in &keys {
            t.insert(1, *k);
            prop_assert!(t.probe(1, *k), "just-inserted key must be present");
            prop_assert!(t.occupancy() <= t.capacity());
        }
    }

    /// Invalidate-by-pid removes exactly that pid's entries.
    #[test]
    fn pid_invalidation_is_complete_and_precise(
        a in proptest::collection::vec(0u64..1_000, 1..100),
        b in proptest::collection::vec(0u64..1_000, 1..100),
    ) {
        let mut t = SetAssocTlb::new(1024, 8);
        for k in &a {
            t.insert(1, *k);
        }
        for k in &b {
            t.insert(2, *k);
        }
        t.invalidate_pid(1);
        for k in &a {
            prop_assert!(!t.probe(1, *k));
        }
        // Pid 2 survivors: whatever was resident stays resident.
        let survivors = b.iter().filter(|k| t.probe(2, **k)).count();
        prop_assert!(survivors > 0, "other pid must not be wiped");
    }

    /// Region invalidation forces the next access in that region to walk.
    #[test]
    fn region_shootdown_forces_walks(pages in proptest::collection::btree_set(0u64..512, 1..64)) {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        for p in &pages {
            mmu.access(1, Vpn(*p), PageSize::Base, false);
        }
        mmu.invalidate_region(1, 0);
        for p in &pages {
            let o = mmu.access(1, Vpn(*p), PageSize::Base, false);
            prop_assert!(o.tlb_miss, "page {p} must miss after shootdown");
        }
    }

    /// PMU conservation: lifetime walk cycles equal the sum of outcome
    /// walk durations, and overhead is within [0, 1] when unhalted covers
    /// at least the walk time.
    #[test]
    fn pmu_accounting_is_conservative(
        accesses in proptest::collection::vec((0u64..100_000, any::<bool>()), 1..300),
    ) {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        let mut total_walk = Cycles::ZERO;
        let mut spent = Cycles::ZERO;
        for (vpn, write) in &accesses {
            let o = mmu.access(7, Vpn(*vpn), PageSize::Base, *write);
            total_walk += o.walk_cycles;
            spent += o.cycles + Cycles::new(100);
        }
        mmu.record_unhalted(7, spent);
        let life = mmu.lifetime(7);
        prop_assert_eq!(life.load_walk + life.store_walk, total_walk);
        let ov = life.mmu_overhead();
        prop_assert!((0.0..=1.0).contains(&ov), "overhead {ov}");
    }

    /// Huge mappings never increase the miss count relative to base
    /// mappings for the same access stream.
    #[test]
    fn huge_never_misses_more(trace in proptest::collection::vec(0u64..8192, 50..400)) {
        let mut base = Mmu::new(TlbConfig::haswell());
        let mut huge = Mmu::new(TlbConfig::haswell());
        let mut bm = 0u64;
        let mut hm = 0u64;
        for v in &trace {
            bm += base.access(1, Vpn(*v), PageSize::Base, false).tlb_miss as u64;
            hm += huge.access(1, Vpn(*v), PageSize::Huge, false).tlb_miss as u64;
        }
        prop_assert!(hm <= bm, "huge {hm} > base {bm}");
    }
}
