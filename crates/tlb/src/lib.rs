//! Hardware model: TLB hierarchy, page-walk caches, PMU, and LLC
//! interference.
//!
//! The paper measures MMU overhead with hardware performance counters
//! (Table 4): `(DTLB_LOAD_MISSES_WALK_DURATION +
//! DTLB_STORE_MISSES_WALK_DURATION) * 100 / CPU_CLK_UNHALTED`. This crate
//! reproduces that methodology over a structural model of the paper's
//! Haswell-EP testbed:
//!
//! * [`SetAssocTlb`] — set-associative translation caches; the default
//!   [`TlbConfig`] mirrors the paper's machine (L1: 64 × 4 KB + 8 × 2 MB
//!   entries, L2: 1024 shared entries).
//! * [`walker`] — the page-table walker with page-walk caches; its cost
//!   model makes walk latency depend on *locality* (a PWC hit means the
//!   leaf PTE is cache-resident), which is exactly why working-set size is
//!   a poor predictor of MMU overhead (§2.4, Table 3).
//! * [`Pmu`] — per-process walk-duration and cycle counters; the
//!   HawkEye-PMU variant reads these, HawkEye-G must estimate instead.
//! * [`Mmu`] — the per-access front end gluing TLBs, walker and PMU, with
//!   an optional *nested* (two-dimensional) walk mode for virtualized
//!   experiments.
//! * [`cache`] — the analytic LLC-pollution model behind the async
//!   pre-zeroing interference experiment (Fig. 10).
//!
//! # Examples
//!
//! ```
//! use hawkeye_tlb::{Mmu, TlbConfig};
//! use hawkeye_vm::{Vpn, PageSize};
//!
//! let mut mmu = Mmu::new(TlbConfig::haswell());
//! // First touch of a page walks the page table...
//! let miss = mmu.access(1, Vpn(42), PageSize::Base, false);
//! assert!(miss.tlb_miss);
//! // ...the second hits the TLB.
//! let hit = mmu.access(1, Vpn(42), PageSize::Base, false);
//! assert!(!hit.tlb_miss);
//! assert!(hit.walk_cycles.get() == 0);
//! ```

pub mod cache;
pub mod config;
pub mod mmu;
pub mod pmu;
pub mod tlb;
pub mod walker;

pub use cache::{InterferenceModel, StoreMode};
pub use config::TlbConfig;
pub use mmu::{AccessOutcome, Mmu};
pub use pmu::{Pmu, PmuWindow};
pub use tlb::SetAssocTlb;
pub use walker::PageWalker;
