//! TLB hierarchy and walk-cost configuration.

/// Structural and timing parameters of the simulated MMU.
///
/// The default ([`TlbConfig::haswell`]) mirrors the paper's testbed, an
/// Intel E5-2690 v3: L1 DTLB with 64 entries for 4 KB pages and 8 entries
/// for 2 MB pages, and a unified 1024-entry L2 TLB for both sizes.
///
/// Walk costs are deliberately locality-dependent (see [`crate::walker`]):
/// `walk_fetch_hot` approximates a page-table-entry fetch that hits the
/// data caches, `walk_fetch_cold` one that misses to DRAM.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::TlbConfig;
///
/// let cfg = TlbConfig::haswell();
/// assert_eq!(cfg.l1_4k_entries, 64);
/// assert_eq!(cfg.l1_2m_entries, 8);
/// assert_eq!(cfg.l2_entries, 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TlbConfig {
    /// L1 DTLB entries for 4 KB pages.
    pub l1_4k_entries: usize,
    /// L1 DTLB associativity for 4 KB pages.
    pub l1_4k_assoc: usize,
    /// L1 DTLB entries for 2 MB pages.
    pub l1_2m_entries: usize,
    /// L1 DTLB associativity for 2 MB pages.
    pub l1_2m_assoc: usize,
    /// Unified L2 TLB entries (shared by 4 KB and 2 MB pages).
    pub l2_entries: usize,
    /// L2 TLB associativity.
    pub l2_assoc: usize,
    /// Page-walk-cache entries for PDEs (each covers 2 MB of VA).
    pub pwc_pde_entries: usize,
    /// Page-walk-cache entries for PDPTEs (each covers 1 GB of VA).
    pub pwc_pdpte_entries: usize,
    /// Extra cycles for an L2-TLB lookup after an L1 miss.
    pub l2_lookup_cycles: u64,
    /// Cycles for a page-table-entry fetch that hits the cache hierarchy.
    pub walk_fetch_hot: u64,
    /// Cycles for a page-table-entry fetch from memory.
    pub walk_fetch_cold: u64,
    /// Multiplier applied to every walk fetch under nested paging
    /// (two-dimensional walks touch up to 24 entries instead of 4).
    pub nested_fetch_factor: u64,
}

impl TlbConfig {
    /// The paper's Haswell-EP testbed.
    pub fn haswell() -> Self {
        TlbConfig {
            l1_4k_entries: 64,
            l1_4k_assoc: 4,
            l1_2m_entries: 8,
            l1_2m_assoc: 8,
            l2_entries: 1024,
            l2_assoc: 8,
            pwc_pde_entries: 32,
            pwc_pdpte_entries: 4,
            l2_lookup_cycles: 7,
            walk_fetch_hot: 30,
            walk_fetch_cold: 170,
            nested_fetch_factor: 3,
        }
    }

    /// A tiny configuration for unit tests (fast to overflow).
    pub fn tiny() -> Self {
        TlbConfig {
            l1_4k_entries: 4,
            l1_4k_assoc: 2,
            l1_2m_entries: 2,
            l1_2m_assoc: 2,
            l2_entries: 8,
            l2_assoc: 2,
            pwc_pde_entries: 2,
            pwc_pdpte_entries: 1,
            l2_lookup_cycles: 7,
            walk_fetch_hot: 30,
            walk_fetch_cold: 170,
            nested_fetch_factor: 3,
        }
    }
}

impl Default for TlbConfig {
    fn default() -> Self {
        Self::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_haswell() {
        assert_eq!(TlbConfig::default(), TlbConfig::haswell());
    }

    #[test]
    fn haswell_reach_matches_paper_narrative() {
        let c = TlbConfig::haswell();
        // L2 reach with 4 KB pages: 4 MiB; with 2 MB pages: 2 GiB. The
        // three-orders-of-magnitude difference is the whole point of huge
        // pages.
        let reach_4k = c.l2_entries as u64 * 4096;
        let reach_2m = c.l2_entries as u64 * 2 * 1024 * 1024;
        assert_eq!(reach_4k, 4 * 1024 * 1024);
        assert_eq!(reach_2m, 2 * 1024 * 1024 * 1024);
    }
}
