//! Analytic last-level-cache interference model for async pre-zeroing.
//!
//! §3.1 and Fig. 10: a pre-zeroing thread on a sibling core writes pages at
//! up to 1 GB/s. With ordinary (temporal, write-allocating) stores it
//! streams through the shared LLC, evicting the co-runner's working set;
//! with non-temporal stores it bypasses the caches, leaving only memory-
//! bandwidth contention. The paper measures e.g. omnetpp slowing down 27 %
//! with caching stores but only 6 % with non-temporal hints.
//!
//! We model the co-runner by two sensitivities:
//!
//! * `llc_sensitivity` — the fraction of runtime lost if its LLC-resident
//!   working set were fully evicted (cache-term ceiling);
//! * `bw_sensitivity` — runtime lost per unit of consumed memory-bandwidth
//!   fraction (both store flavours pay this).

/// How the zeroing thread's stores interact with the cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum StoreMode {
    /// Ordinary write-allocate stores: pollute the LLC.
    Temporal,
    /// Non-temporal (streaming) stores: bypass the caches.
    #[default]
    NonTemporal,
}

/// Analytic interference model for one co-runner.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::{InterferenceModel, StoreMode};
///
/// let m = InterferenceModel::haswell();
/// // omnetpp-like profile at 1 GB/s zeroing:
/// let temporal = m.slowdown(0.25, 3.0, StoreMode::Temporal, 1e9);
/// let nt = m.slowdown(0.25, 3.0, StoreMode::NonTemporal, 1e9);
/// assert!(temporal > nt);
/// assert!(nt > 1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InterferenceModel {
    /// Shared LLC capacity in bytes.
    pub llc_bytes: f64,
    /// Socket memory bandwidth in bytes/second.
    pub mem_bw: f64,
    /// Co-runner working-set reuse window in seconds: data evicted and
    /// re-fetched within this window costs the co-runner misses.
    pub reuse_window: f64,
}

impl InterferenceModel {
    /// The paper's testbed: 30 MB shared L3, ~50 GB/s per socket.
    pub fn haswell() -> Self {
        InterferenceModel { llc_bytes: 30e6, mem_bw: 50e9, reuse_window: 0.030 }
    }

    /// Fraction of the co-runner's LLC-resident set evicted by zeroing at
    /// `rate` bytes/s (0.0–1.0). Non-temporal stores evict nothing.
    pub fn pollution(&self, mode: StoreMode, rate: f64) -> f64 {
        match mode {
            StoreMode::NonTemporal => 0.0,
            StoreMode::Temporal => (rate * self.reuse_window / self.llc_bytes).min(1.0),
        }
    }

    /// Slowdown multiplier (≥ 1.0) experienced by a co-runner with the
    /// given sensitivities when zeroing runs at `rate` bytes/s.
    pub fn slowdown(
        &self,
        llc_sensitivity: f64,
        bw_sensitivity: f64,
        mode: StoreMode,
        rate: f64,
    ) -> f64 {
        let bw_term = bw_sensitivity * (rate / self.mem_bw).min(1.0);
        let cache_term = llc_sensitivity * self.pollution(mode, rate);
        1.0 + bw_term + cache_term
    }
}

impl Default for InterferenceModel {
    fn default() -> Self {
        Self::haswell()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_rate_means_no_slowdown() {
        let m = InterferenceModel::haswell();
        assert_eq!(m.slowdown(0.5, 5.0, StoreMode::Temporal, 0.0), 1.0);
        assert_eq!(m.slowdown(0.5, 5.0, StoreMode::NonTemporal, 0.0), 1.0);
    }

    #[test]
    fn non_temporal_eliminates_cache_term() {
        let m = InterferenceModel::haswell();
        assert_eq!(m.pollution(StoreMode::NonTemporal, 1e12), 0.0);
        assert!(m.pollution(StoreMode::Temporal, 1e9) > 0.9);
    }

    #[test]
    fn pollution_saturates_at_one() {
        let m = InterferenceModel::haswell();
        assert_eq!(m.pollution(StoreMode::Temporal, 1e15), 1.0);
    }

    #[test]
    fn omnetpp_like_numbers() {
        // Fig. 10's headline: ~27% slowdown with caching stores vs ~6%
        // with non-temporal stores at 1 GB/s (0.25M pages/s).
        let m = InterferenceModel::haswell();
        let t = m.slowdown(0.21, 3.0, StoreMode::Temporal, 1e9);
        let nt = m.slowdown(0.21, 3.0, StoreMode::NonTemporal, 1e9);
        assert!((t - 1.27).abs() < 0.02, "temporal {t}");
        assert!((nt - 1.06).abs() < 0.01, "non-temporal {nt}");
    }

    #[test]
    fn rate_limited_zeroing_is_benign() {
        // At the production rate limit (10k pages/s = 41 MB/s) even a
        // cache-sensitive workload barely notices.
        let m = InterferenceModel::haswell();
        let s = m.slowdown(0.21, 3.0, StoreMode::NonTemporal, 10_000.0 * 4096.0);
        assert!(s < 1.01, "{s}");
    }
}
