//! Performance-monitoring counters (Table 4 methodology).
//!
//! The paper measures MMU overhead as
//! `(DTLB_LOAD_MISSES_WALK_DURATION + DTLB_STORE_MISSES_WALK_DURATION) *
//! 100 / CPU_CLK_UNHALTED`. The simulator keeps exactly those counters per
//! process: walk durations are charged by the [`crate::Mmu`]; unhalted
//! cycles are charged by the kernel as a process executes.
//!
//! HawkEye-PMU samples a *window* (recent overhead) rather than lifetime
//! totals, so counters support snapshot-and-reset windows.

use hawkeye_metrics::{Cycles, MetricsSink};
use hawkeye_trace::{TraceEvent, TraceSink};
use std::collections::BTreeMap;

/// One process's counter set.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    load_walk: Cycles,
    store_walk: Cycles,
    unhalted: Cycles,
    walks: u64,
}

/// A snapshot of one measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmuWindow {
    /// `DTLB_LOAD_MISSES_WALK_DURATION` for the window.
    pub load_walk: Cycles,
    /// `DTLB_STORE_MISSES_WALK_DURATION` for the window.
    pub store_walk: Cycles,
    /// `CPU_CLK_UNHALTED` for the window.
    pub unhalted: Cycles,
    /// Page walks observed.
    pub walks: u64,
}

impl PmuWindow {
    /// MMU overhead per Table 4, as a fraction (0.0–1.0). Returns 0 for an
    /// empty window.
    pub fn mmu_overhead(&self) -> f64 {
        if self.unhalted == Cycles::ZERO {
            return 0.0;
        }
        (self.load_walk + self.store_walk).get() as f64 / self.unhalted.get() as f64
    }
}

/// Per-process performance counters.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::Pmu;
/// use hawkeye_metrics::Cycles;
///
/// let mut pmu = Pmu::new();
/// pmu.record_walk(1, Cycles::new(300), false);
/// pmu.record_unhalted(1, Cycles::new(1000));
/// assert!((pmu.lifetime(1).mmu_overhead() - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    lifetime: BTreeMap<u32, Counters>,
    window: BTreeMap<u32, Counters>,
    /// Event journal handle; disabled (no-op) unless a trace scope attaches.
    trace: TraceSink,
    /// Cycle-attribution handle; feeds the per-walk duration histogram.
    metrics: MetricsSink,
}

impl Pmu {
    /// Creates an empty counter file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the event-journal sink used for `QuantumEnd` snapshots.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Install the cycle-attribution sink feeding the `walk_cycles`
    /// per-walk duration histogram.
    pub fn set_metrics_sink(&mut self, metrics: MetricsSink) {
        self.metrics = metrics;
    }

    /// Charges a page-walk duration to `pid` (`store` selects the store
    /// counter, mirroring the two Table 4 events).
    pub fn record_walk(&mut self, pid: u32, duration: Cycles, store: bool) {
        for c in [self.lifetime.entry(pid).or_default(), self.window.entry(pid).or_default()] {
            if store {
                c.store_walk += duration;
            } else {
                c.load_walk += duration;
            }
            c.walks += 1;
        }
        self.metrics.observe("walk_cycles", duration.get());
    }

    /// Charges executed cycles (`CPU_CLK_UNHALTED`) to `pid`.
    pub fn record_unhalted(&mut self, pid: u32, cycles: Cycles) {
        self.lifetime.entry(pid).or_default().unhalted += cycles;
        self.window.entry(pid).or_default().unhalted += cycles;
    }

    /// Lifetime counters for `pid` (zeroes if never seen).
    pub fn lifetime(&self, pid: u32) -> PmuWindow {
        Self::to_window(self.lifetime.get(&pid))
    }

    /// Current-window counters for `pid` without resetting.
    pub fn window(&self, pid: u32) -> PmuWindow {
        Self::to_window(self.window.get(&pid))
    }

    /// Returns the current window for `pid` and starts a new one —
    /// HawkEye-PMU's periodic sampling.
    pub fn sample_window(&mut self, pid: u32) -> PmuWindow {
        let w = Self::to_window(self.window.get(&pid));
        self.window.remove(&pid);
        self.trace.emit(
            pid,
            TraceEvent::QuantumEnd {
                load_walk: w.load_walk.get(),
                store_walk: w.store_walk.get(),
                unhalted: w.unhalted.get(),
                walks: w.walks,
            },
        );
        w
    }

    /// Drops all state for an exited process.
    pub fn remove(&mut self, pid: u32) {
        self.lifetime.remove(&pid);
        self.window.remove(&pid);
    }

    /// All pids with lifetime counters.
    pub fn pids(&self) -> Vec<u32> {
        self.lifetime.keys().copied().collect()
    }

    fn to_window(c: Option<&Counters>) -> PmuWindow {
        c.map(|c| PmuWindow {
            load_walk: c.load_walk,
            store_walk: c.store_walk,
            unhalted: c.unhalted,
            walks: c.walks,
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_formula_matches_table4() {
        let mut pmu = Pmu::new();
        pmu.record_walk(3, Cycles::new(100), false);
        pmu.record_walk(3, Cycles::new(50), true);
        pmu.record_unhalted(3, Cycles::new(1000));
        let w = pmu.lifetime(3);
        assert_eq!(w.walks, 2);
        // (C1 + C2) / C3 = 150/1000
        assert!((w.mmu_overhead() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn window_resets_but_lifetime_accumulates() {
        let mut pmu = Pmu::new();
        pmu.record_walk(1, Cycles::new(10), false);
        pmu.record_unhalted(1, Cycles::new(100));
        let w1 = pmu.sample_window(1);
        assert!((w1.mmu_overhead() - 0.1).abs() < 1e-12);
        // New window is empty.
        assert_eq!(pmu.window(1), PmuWindow::default());
        pmu.record_walk(1, Cycles::new(90), true);
        pmu.record_unhalted(1, Cycles::new(100));
        let w2 = pmu.sample_window(1);
        assert!((w2.mmu_overhead() - 0.9).abs() < 1e-12);
        // Lifetime saw everything.
        assert!((pmu.lifetime(1).mmu_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn unknown_pid_reads_zero() {
        let pmu = Pmu::new();
        assert_eq!(pmu.lifetime(42).mmu_overhead(), 0.0);
        assert_eq!(pmu.window(42).walks, 0);
    }

    #[test]
    fn remove_clears_state() {
        let mut pmu = Pmu::new();
        pmu.record_unhalted(1, Cycles::new(5));
        assert_eq!(pmu.pids(), vec![1]);
        pmu.remove(1);
        assert!(pmu.pids().is_empty());
    }
}
