//! Performance-monitoring counters (Table 4 methodology).
//!
//! The paper measures MMU overhead as
//! `(DTLB_LOAD_MISSES_WALK_DURATION + DTLB_STORE_MISSES_WALK_DURATION) *
//! 100 / CPU_CLK_UNHALTED`. The simulator keeps exactly those counters per
//! process: walk durations are charged by the [`crate::Mmu`]; unhalted
//! cycles are charged by the kernel as a process executes.
//!
//! HawkEye-PMU samples a *window* (recent overhead) rather than lifetime
//! totals, so counters support snapshot-and-reset windows.

use hawkeye_metrics::{Cycles, LogHistogram, MetricsSink};
use hawkeye_trace::{TraceEvent, TraceSink};

/// One process's counter set.
#[derive(Debug, Clone, Copy, Default)]
struct Counters {
    load_walk: Cycles,
    store_walk: Cycles,
    unhalted: Cycles,
    walks: u64,
}

/// A snapshot of one measurement window.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PmuWindow {
    /// `DTLB_LOAD_MISSES_WALK_DURATION` for the window.
    pub load_walk: Cycles,
    /// `DTLB_STORE_MISSES_WALK_DURATION` for the window.
    pub store_walk: Cycles,
    /// `CPU_CLK_UNHALTED` for the window.
    pub unhalted: Cycles,
    /// Page walks observed.
    pub walks: u64,
}

impl PmuWindow {
    /// MMU overhead per Table 4, as a fraction (0.0–1.0). Returns 0 for an
    /// empty window.
    pub fn mmu_overhead(&self) -> f64 {
        if self.unhalted == Cycles::ZERO {
            return 0.0;
        }
        (self.load_walk + self.store_walk).get() as f64 / self.unhalted.get() as f64
    }

    /// Folds another counter set into this one. Every PMU counter is
    /// additive, so merging per-core (or per-pid) windows is exactly the
    /// counter file a single shared PMU would have recorded — this is
    /// how multi-core machines assemble per-core views from per-process
    /// counters (and how they would fold per-core files back into a
    /// machine-wide one).
    pub fn merge(&mut self, other: &PmuWindow) {
        self.load_walk += other.load_walk;
        self.store_walk += other.store_walk;
        self.unhalted += other.unhalted;
        self.walks += other.walks;
    }
}

/// Per-process performance counters.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::Pmu;
/// use hawkeye_metrics::Cycles;
///
/// let mut pmu = Pmu::new();
/// pmu.record_walk(1, Cycles::new(300), false);
/// pmu.record_unhalted(1, Cycles::new(1000));
/// assert!((pmu.lifetime(1).mmu_overhead() - 0.3).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Pmu {
    /// Per-pid counter files, sorted by pid. A handful of processes run
    /// per machine, so an inline sorted Vec beats a tree: the per-walk
    /// charge path is a short scan over one cache line.
    lifetime: Vec<(u32, Counters)>,
    window: Vec<(u32, Counters)>,
    /// Event journal handle; disabled (no-op) unless a trace scope attaches.
    trace: TraceSink,
    /// Cycle-attribution handle; feeds the per-walk duration histogram.
    metrics: MetricsSink,
    /// Walk durations accumulated since the last [`Pmu::flush_metrics`].
    /// Observing into the shared registry costs a lock and two map
    /// lookups per walk — far too much for the per-touch path — so walks
    /// land here and merge into `walk_cycles` once per quantum. Merging
    /// is exactly equivalent to per-walk observation (all histogram state
    /// is additive), so registry readers see identical values.
    pending_walks: LogHistogram,
}

/// `table[pid]`, inserting zeroed counters at the sorted position when
/// absent.
#[inline]
fn entry(table: &mut Vec<(u32, Counters)>, pid: u32) -> &mut Counters {
    match table.iter().position(|(p, _)| *p >= pid) {
        Some(i) if table[i].0 == pid => &mut table[i].1,
        Some(i) => {
            table.insert(i, (pid, Counters::default()));
            &mut table[i].1
        }
        None => {
            table.push((pid, Counters::default()));
            &mut table.last_mut().expect("just pushed").1
        }
    }
}

#[inline]
fn get(table: &[(u32, Counters)], pid: u32) -> Option<&Counters> {
    table.iter().find(|(p, _)| *p == pid).map(|(_, c)| c)
}

impl Pmu {
    /// Creates an empty counter file.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install the event-journal sink used for `QuantumEnd` snapshots.
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// Install the cycle-attribution sink feeding the `walk_cycles`
    /// per-walk duration histogram.
    pub fn set_metrics_sink(&mut self, metrics: MetricsSink) {
        self.metrics = metrics;
    }

    /// Charges a page-walk duration to `pid` (`store` selects the store
    /// counter, mirroring the two Table 4 events).
    pub fn record_walk(&mut self, pid: u32, duration: Cycles, store: bool) {
        for c in [entry(&mut self.lifetime, pid), entry(&mut self.window, pid)] {
            if store {
                c.store_walk += duration;
            } else {
                c.load_walk += duration;
            }
            c.walks += 1;
        }
        self.pending_walks.observe(duration.get());
    }

    /// Merges the walk durations accumulated since the last flush into
    /// the registry's `walk_cycles` histogram. The simulator calls this
    /// once per quantum (and at run-loop exit); anything reading the
    /// registry afterwards sees exactly what per-walk observation would
    /// have produced.
    pub fn flush_metrics(&mut self) {
        if self.pending_walks.count() > 0 {
            self.metrics.merge_hist("walk_cycles", &self.pending_walks);
            self.pending_walks = LogHistogram::new();
        }
    }

    /// Charges executed cycles (`CPU_CLK_UNHALTED`) to `pid`.
    pub fn record_unhalted(&mut self, pid: u32, cycles: Cycles) {
        entry(&mut self.lifetime, pid).unhalted += cycles;
        entry(&mut self.window, pid).unhalted += cycles;
    }

    /// Lifetime counters for `pid` (zeroes if never seen).
    pub fn lifetime(&self, pid: u32) -> PmuWindow {
        Self::to_window(get(&self.lifetime, pid))
    }

    /// Current-window counters for `pid` without resetting.
    pub fn window(&self, pid: u32) -> PmuWindow {
        Self::to_window(get(&self.window, pid))
    }

    /// Returns the current window for `pid` and starts a new one —
    /// HawkEye-PMU's periodic sampling.
    pub fn sample_window(&mut self, pid: u32) -> PmuWindow {
        let w = Self::to_window(get(&self.window, pid));
        self.window.retain(|(p, _)| *p != pid);
        self.trace.emit(
            pid,
            TraceEvent::QuantumEnd {
                load_walk: w.load_walk.get(),
                store_walk: w.store_walk.get(),
                unhalted: w.unhalted.get(),
                walks: w.walks,
            },
        );
        w
    }

    /// Drops all state for an exited process.
    pub fn remove(&mut self, pid: u32) {
        self.lifetime.retain(|(p, _)| *p != pid);
        self.window.retain(|(p, _)| *p != pid);
    }

    /// All pids with lifetime counters, ascending.
    pub fn pids(&self) -> Vec<u32> {
        self.lifetime.iter().map(|(p, _)| *p).collect()
    }

    fn to_window(c: Option<&Counters>) -> PmuWindow {
        c.map(|c| PmuWindow {
            load_walk: c.load_walk,
            store_walk: c.store_walk,
            unhalted: c.unhalted,
            walks: c.walks,
        })
        .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_formula_matches_table4() {
        let mut pmu = Pmu::new();
        pmu.record_walk(3, Cycles::new(100), false);
        pmu.record_walk(3, Cycles::new(50), true);
        pmu.record_unhalted(3, Cycles::new(1000));
        let w = pmu.lifetime(3);
        assert_eq!(w.walks, 2);
        // (C1 + C2) / C3 = 150/1000
        assert!((w.mmu_overhead() - 0.15).abs() < 1e-12);
    }

    #[test]
    fn window_resets_but_lifetime_accumulates() {
        let mut pmu = Pmu::new();
        pmu.record_walk(1, Cycles::new(10), false);
        pmu.record_unhalted(1, Cycles::new(100));
        let w1 = pmu.sample_window(1);
        assert!((w1.mmu_overhead() - 0.1).abs() < 1e-12);
        // New window is empty.
        assert_eq!(pmu.window(1), PmuWindow::default());
        pmu.record_walk(1, Cycles::new(90), true);
        pmu.record_unhalted(1, Cycles::new(100));
        let w2 = pmu.sample_window(1);
        assert!((w2.mmu_overhead() - 0.9).abs() < 1e-12);
        // Lifetime saw everything.
        assert!((pmu.lifetime(1).mmu_overhead() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn merge_is_additive_and_partition_independent() {
        let mut pmu = Pmu::new();
        pmu.record_walk(1, Cycles::new(100), false);
        pmu.record_unhalted(1, Cycles::new(1000));
        pmu.record_walk(2, Cycles::new(50), true);
        pmu.record_unhalted(2, Cycles::new(500));
        pmu.record_walk(3, Cycles::new(25), false);
        pmu.record_unhalted(3, Cycles::new(250));
        // Merge per-pid counters in two different groupings (cores
        // {1,2}+{3} vs {1}+{2,3}); the machine-wide fold must agree.
        let fold = |groups: &[&[u32]]| {
            let mut total = PmuWindow::default();
            for g in groups {
                let mut core = PmuWindow::default();
                for pid in *g {
                    core.merge(&pmu.lifetime(*pid));
                }
                total.merge(&core);
            }
            total
        };
        let a = fold(&[&[1, 2], &[3]]);
        let b = fold(&[&[1], &[2, 3]]);
        assert_eq!(a, b);
        assert_eq!(a.walks, 3);
        assert_eq!(a.unhalted, Cycles::new(1750));
        assert!((a.mmu_overhead() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn unknown_pid_reads_zero() {
        let pmu = Pmu::new();
        assert_eq!(pmu.lifetime(42).mmu_overhead(), 0.0);
        assert_eq!(pmu.window(42).walks, 0);
    }

    #[test]
    fn remove_clears_state() {
        let mut pmu = Pmu::new();
        pmu.record_unhalted(1, Cycles::new(5));
        assert_eq!(pmu.pids(), vec![1]);
        pmu.remove(1);
        assert!(pmu.pids().is_empty());
    }
}
