//! The MMU front end: TLB hierarchy + walker + PMU.
//!
//! Every simulated memory access consults the L1 TLB for its page size,
//! then the unified L2, then walks the page table. Walk durations are
//! charged to the per-process PMU counters exactly as the paper's Table 4
//! methodology expects.

use crate::config::TlbConfig;
use crate::pmu::{Pmu, PmuWindow};
use crate::tlb::SetAssocTlb;
use crate::walker::PageWalker;
use hawkeye_metrics::Cycles;
use hawkeye_vm::{PageSize, Vpn};

/// Timing outcome of one access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Translation overhead beyond an L1 TLB hit (L2 lookup + walk).
    pub cycles: Cycles,
    /// Whether the access missed both TLB levels and walked.
    pub tlb_miss: bool,
    /// The walk portion of `cycles` (what the PMU counters see).
    pub walk_cycles: Cycles,
}

/// The per-socket MMU model.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::{Mmu, TlbConfig};
/// use hawkeye_vm::{Vpn, PageSize};
///
/// let mut mmu = Mmu::new(TlbConfig::haswell());
/// // A 2 MB mapping covers all 512 base pages with one entry:
/// mmu.access(1, Vpn(0), PageSize::Huge, false);
/// let o = mmu.access(1, Vpn(511), PageSize::Huge, true);
/// assert!(!o.tlb_miss);
/// ```
#[derive(Debug, Clone)]
pub struct Mmu {
    l1_4k: SetAssocTlb,
    l1_2m: SetAssocTlb,
    l2: SetAssocTlb,
    walker: PageWalker,
    pmu: Pmu,
    nested: bool,
    l2_lookup_cycles: u64,
}

impl Mmu {
    /// Creates an MMU with the given geometry, in native (non-nested)
    /// mode.
    pub fn new(cfg: TlbConfig) -> Self {
        Mmu {
            l1_4k: SetAssocTlb::new(cfg.l1_4k_entries, cfg.l1_4k_assoc),
            l1_2m: SetAssocTlb::new(cfg.l1_2m_entries, cfg.l1_2m_assoc),
            l2: SetAssocTlb::new(cfg.l2_entries, cfg.l2_assoc),
            walker: PageWalker::new(&cfg),
            pmu: Pmu::new(),
            nested: false,
            l2_lookup_cycles: cfg.l2_lookup_cycles,
        }
    }

    /// Switches two-dimensional (nested) paging on or off. Virtualized
    /// experiments run with nested walks; see Fig. 9.
    pub fn set_nested(&mut self, nested: bool) {
        self.nested = nested;
    }

    /// Whether nested paging is enabled.
    pub fn nested(&self) -> bool {
        self.nested
    }

    /// Install the event-journal sink (forwarded to the PMU for
    /// `QuantumEnd` snapshots).
    pub fn set_trace_sink(&mut self, trace: hawkeye_trace::TraceSink) {
        self.pmu.set_trace_sink(trace);
    }

    /// Install the cycle-attribution sink (forwarded to the PMU for the
    /// walk-duration histogram).
    pub fn set_metrics_sink(&mut self, metrics: hawkeye_metrics::MetricsSink) {
        self.pmu.set_metrics_sink(metrics);
    }

    // L2 is unified across page sizes; tag keys with the size so a 4 KB
    // and a 2 MB entry for overlapping ranges never alias.
    #[inline]
    fn l2_key(key: u64, size: PageSize) -> u64 {
        (key << 1) | matches!(size, PageSize::Huge) as u64
    }

    /// Simulates the translation of one access to `vpn`, mapped at `size`.
    /// Returns the translation timing; walk durations are charged to the
    /// PMU (`write` selects the store-walk counter).
    pub fn access(&mut self, pid: u32, vpn: Vpn, size: PageSize, write: bool) -> AccessOutcome {
        let key = match size {
            PageSize::Base => vpn.0,
            PageSize::Huge => vpn.hvpn().0,
        };
        let l1 = match size {
            PageSize::Base => &mut self.l1_4k,
            PageSize::Huge => &mut self.l1_2m,
        };
        if l1.lookup(pid, key) {
            return AccessOutcome { cycles: Cycles::ZERO, tlb_miss: false, walk_cycles: Cycles::ZERO };
        }
        let l2_cost = Cycles::new(self.l2_lookup_cycles);
        if self.l2.lookup(pid, Self::l2_key(key, size)) {
            // The L1 lookup above just missed and nothing touched L1 since.
            l1.insert_absent(pid, key);
            return AccessOutcome { cycles: l2_cost, tlb_miss: false, walk_cycles: Cycles::ZERO };
        }
        let walk = self.walker.walk(pid, vpn, size, self.nested);
        self.pmu.record_walk(pid, walk, write);
        let l1 = match size {
            PageSize::Base => &mut self.l1_4k,
            PageSize::Huge => &mut self.l1_2m,
        };
        // Both lookups above missed; the walk touches only the PWCs.
        l1.insert_absent(pid, key);
        self.l2.insert_absent(pid, Self::l2_key(key, size));
        AccessOutcome { cycles: l2_cost + walk, tlb_miss: true, walk_cycles: walk }
    }

    /// Records `n` consecutive guaranteed L1 hits on one entry in a
    /// single step — equivalent to `n` [`Mmu::access`] calls that would
    /// each hit L1 (each such call returns `AccessOutcome::ZERO`-like
    /// timing and touches no other structure). Returns `false` without
    /// any state change when the entry is not resident in L1; the caller
    /// must then fall back to per-access modeling.
    pub fn record_l1_hits(&mut self, pid: u32, vpn: Vpn, size: PageSize, n: u64) -> bool {
        let (l1, key) = match size {
            PageSize::Base => (&mut self.l1_4k, vpn.0),
            PageSize::Huge => (&mut self.l1_2m, vpn.hvpn().0),
        };
        l1.record_hits(pid, key, n)
    }

    /// Whether one access to `vpn` at `size` is guaranteed to hit the L1
    /// TLB (no state change, no statistics).
    pub fn probe_l1(&self, pid: u32, vpn: Vpn, size: PageSize) -> bool {
        match size {
            PageSize::Base => self.l1_4k.probe(pid, vpn.0),
            PageSize::Huge => self.l1_2m.probe(pid, vpn.hvpn().0),
        }
    }

    /// Charges executed (unhalted) cycles to a process — the denominator
    /// of the Table 4 overhead formula.
    pub fn record_unhalted(&mut self, pid: u32, cycles: Cycles) {
        self.pmu.record_unhalted(pid, cycles);
    }

    /// Flushes walk durations batched since the last call into the
    /// registry's `walk_cycles` histogram (see [`Pmu::flush_metrics`]).
    pub fn flush_metrics(&mut self) {
        self.pmu.flush_metrics();
    }

    /// Lifetime counters for `pid`.
    pub fn lifetime(&self, pid: u32) -> PmuWindow {
        self.pmu.lifetime(pid)
    }

    /// Reads and resets the current measurement window for `pid`
    /// (HawkEye-PMU sampling).
    pub fn sample_window(&mut self, pid: u32) -> PmuWindow {
        self.pmu.sample_window(pid)
    }

    /// Reads the current window without resetting.
    pub fn window(&self, pid: u32) -> PmuWindow {
        self.pmu.window(pid)
    }

    /// TLB shootdown for a single base page (unmap / remap / migration).
    pub fn invalidate_page(&mut self, pid: u32, vpn: Vpn) {
        self.l1_4k.invalidate(pid, vpn.0);
        self.l2.invalidate(pid, Self::l2_key(vpn.0, PageSize::Base));
    }

    /// TLB shootdown for a huge region: drops the 2 MB entry, every 4 KB
    /// entry inside, and the walker's PWC entry (promotion, demotion,
    /// region unmap).
    pub fn invalidate_region(&mut self, pid: u32, hvpn: u64) {
        self.l1_2m.invalidate(pid, hvpn);
        self.l2.invalidate(pid, Self::l2_key(hvpn, PageSize::Huge));
        let lo = hvpn << 9;
        let hi = lo + 512;
        self.l1_4k.invalidate_if(pid, |k| k >= lo && k < hi);
        self.l2.invalidate_if(pid, |k| {
            (k & 1 == 0) && {
                let v = k >> 1;
                v >= lo && v < hi
            }
        });
        self.walker.invalidate_region(pid, hvpn);
    }

    /// Drops a process's cached translations (exit, full flush) while
    /// keeping its PMU counters readable for post-mortem reporting.
    pub fn flush_translations(&mut self, pid: u32) {
        self.l1_4k.invalidate_pid(pid);
        self.l1_2m.invalidate_pid(pid);
        self.l2.invalidate_pid(pid);
        self.walker.invalidate_pid(pid);
    }

    /// Drops all of a process's translations *and* counters.
    pub fn remove_process(&mut self, pid: u32) {
        self.flush_translations(pid);
        self.pmu.remove(pid);
    }

    /// Total page walks performed.
    pub fn total_walks(&self) -> u64 {
        self.walker.walks()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        let a = mmu.access(1, Vpn(5), PageSize::Base, false);
        assert!(a.tlb_miss);
        assert!(a.walk_cycles > Cycles::ZERO);
        let b = mmu.access(1, Vpn(5), PageSize::Base, false);
        assert!(!b.tlb_miss);
        assert_eq!(b.cycles, Cycles::ZERO);
    }

    #[test]
    fn huge_entry_covers_region() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        mmu.access(1, Vpn(0), PageSize::Huge, false);
        for vpn in [1u64, 100, 511] {
            assert!(!mmu.access(1, Vpn(vpn), PageSize::Huge, false).tlb_miss);
        }
        assert!(mmu.access(1, Vpn(512), PageSize::Huge, false).tlb_miss);
    }

    #[test]
    fn huge_reach_exceeds_base_reach() {
        // Touch 256 MB worth of pages: 4 KB pages thrash the TLBs, 2 MB
        // pages fit easily.
        let pages_2m = 128u64;
        let mut base_misses = 0;
        let mut huge_misses = 0;
        let mut mb = Mmu::new(TlbConfig::haswell());
        let mut mh = Mmu::new(TlbConfig::haswell());
        for round in 0..3 {
            let _ = round;
            for h in 0..pages_2m {
                for p in (0..512).step_by(64) {
                    let vpn = Vpn(h * 512 + p);
                    base_misses += mb.access(1, vpn, PageSize::Base, false).tlb_miss as u64;
                    huge_misses += mh.access(1, vpn, PageSize::Huge, false).tlb_miss as u64;
                }
            }
        }
        assert!(huge_misses * 10 < base_misses, "base {base_misses} huge {huge_misses}");
    }

    #[test]
    fn pmu_sees_walk_cycles() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        let o = mmu.access(9, Vpn(1000), PageSize::Base, true);
        mmu.record_unhalted(9, Cycles::new(1000));
        let w = mmu.lifetime(9);
        assert_eq!(w.store_walk, o.walk_cycles);
        assert_eq!(w.load_walk, Cycles::ZERO);
        assert!(w.mmu_overhead() > 0.0);
    }

    #[test]
    fn region_invalidation_forces_miss() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        mmu.access(1, Vpn(3), PageSize::Base, false);
        mmu.access(1, Vpn(0), PageSize::Huge, false);
        mmu.invalidate_region(1, 0);
        assert!(mmu.access(1, Vpn(3), PageSize::Base, false).tlb_miss);
        assert!(mmu.access(1, Vpn(0), PageSize::Huge, false).tlb_miss);
    }

    #[test]
    fn nested_mode_doubles_down_on_walk_cost() {
        let mut native = Mmu::new(TlbConfig::haswell());
        let mut virt = Mmu::new(TlbConfig::haswell());
        virt.set_nested(true);
        assert!(virt.nested());
        let n = native.access(1, Vpn(777), PageSize::Base, false);
        let v = virt.access(1, Vpn(777), PageSize::Base, false);
        assert!(v.walk_cycles > n.walk_cycles);
    }

    #[test]
    fn process_removal_clears_counters() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        mmu.access(1, Vpn(1), PageSize::Base, false);
        mmu.remove_process(1);
        assert_eq!(mmu.lifetime(1).walks, 0);
        assert!(mmu.access(1, Vpn(1), PageSize::Base, false).tlb_miss);
    }

    #[test]
    fn record_l1_hits_matches_serial_accesses() {
        let mut bulk = Mmu::new(TlbConfig::haswell());
        let mut serial = Mmu::new(TlbConfig::haswell());
        // Warm both with the same miss.
        bulk.access(1, Vpn(0), PageSize::Huge, false);
        serial.access(1, Vpn(0), PageSize::Huge, false);
        assert!(bulk.probe_l1(1, Vpn(7), PageSize::Huge));
        assert!(bulk.record_l1_hits(1, Vpn(7), PageSize::Huge, 100));
        for i in 0..100u64 {
            let o = serial.access(1, Vpn(i % 512), PageSize::Huge, false);
            assert!(!o.tlb_miss);
            assert_eq!(o.cycles, Cycles::ZERO);
        }
        // Same lifetime PMU state (no walks recorded by hits) and same
        // subsequent behavior.
        assert_eq!(bulk.lifetime(1).walks, serial.lifetime(1).walks);
        let b = bulk.access(1, Vpn(512), PageSize::Huge, false);
        let s = serial.access(1, Vpn(512), PageSize::Huge, false);
        assert_eq!(b, s);
        // Cold entry: refused, untouched.
        assert!(!bulk.record_l1_hits(2, Vpn(0), PageSize::Base, 5));
        assert!(!bulk.probe_l1(2, Vpn(0), PageSize::Base));
    }

    #[test]
    fn l2_and_l1_sizes_do_not_alias() {
        let mut mmu = Mmu::new(TlbConfig::haswell());
        // hvpn 5 and vpn 5 must be distinct L2 entries.
        mmu.access(1, Vpn(5 * 512), PageSize::Huge, false);
        let o = mmu.access(1, Vpn(5), PageSize::Base, false);
        assert!(o.tlb_miss);
    }
}
