//! Set-associative translation caches with true-LRU replacement.
//!
//! Entries are keyed by `(pid, page number)`; the simulator does not store
//! translations (correctness lives in the page tables) — the TLB model only
//! determines *timing*: hit or miss. Invalidation hooks let the kernel
//! model TLB shootdowns on unmap, promotion, demotion and migration.

/// A set-associative TLB (or page-walk cache) for one page size.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::SetAssocTlb;
///
/// let mut tlb = SetAssocTlb::new(8, 2);
/// assert!(!tlb.lookup(1, 100));
/// tlb.insert(1, 100);
/// assert!(tlb.lookup(1, 100));
/// assert!(!tlb.lookup(2, 100)); // other process, other entry
/// ```
#[derive(Debug, Clone)]
pub struct SetAssocTlb {
    /// Flat set storage: set `i` occupies `entries[i*assoc..i*assoc+lens[i]]`.
    /// One contiguous allocation — the lookup hot path does a single
    /// indexed scan with no per-set pointer chase. Within-set order is
    /// unobservable: `(pid, key)` pairs are unique per set and LRU stamps
    /// are globally unique, so scans and eviction are order-independent.
    entries: Vec<Entry>,
    lens: Vec<u8>,
    assoc: usize,
    stamp: u64,
    hits: u64,
    misses: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    /// `pid << KEY_BITS | key` — one 16-byte entry, one compare per way.
    tag: u64,
    stamp: u64,
}

/// Key bits reserved in an entry tag; keys are page or region numbers
/// (≤ 2^47 even after the L2's size-bit shift) and pids are small spawn
/// counters, so the packing is lossless.
const KEY_BITS: u32 = 48;
const KEY_MASK: u64 = (1 << KEY_BITS) - 1;

#[inline]
fn tag(pid: u32, key: u64) -> u64 {
    debug_assert!(key <= KEY_MASK, "tlb key exceeds {KEY_BITS} bits");
    debug_assert!((pid as u64) < (1 << (64 - KEY_BITS)), "pid exceeds tag bits");
    ((pid as u64) << KEY_BITS) | key
}

impl SetAssocTlb {
    /// Creates a TLB with `entries` total entries and `assoc` ways.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is 0, `assoc` is 0, or `assoc` does not divide
    /// `entries`.
    pub fn new(entries: usize, assoc: usize) -> Self {
        assert!(entries > 0 && assoc > 0, "empty tlb");
        assert_eq!(entries % assoc, 0, "associativity must divide entry count");
        assert!(assoc <= u8::MAX as usize, "associativity exceeds set length counter");
        let nsets = entries / assoc;
        SetAssocTlb {
            entries: vec![Entry::default(); entries],
            lens: vec![0; nsets],
            assoc,
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Total capacity in entries.
    pub fn capacity(&self) -> usize {
        self.lens.len() * self.assoc
    }

    #[inline]
    fn set_index(&self, key: u64) -> usize {
        // Same mapping as `key % nsets`, but real geometries have
        // power-of-two set counts and a masked AND avoids a hardware
        // divide on every probe.
        let n = self.lens.len();
        if n.is_power_of_two() {
            (key as usize) & (n - 1)
        } else {
            (key as usize) % n
        }
    }

    /// The live entries of the set holding `key`, with the set's base
    /// offset and length.
    #[inline]
    fn set(&mut self, key: u64) -> (usize, usize) {
        let idx = self.set_index(key);
        (idx * self.assoc, self.lens[idx] as usize)
    }

    /// Looks up `(pid, key)`, refreshing LRU on hit. Returns whether it
    /// hit. Statistics are updated.
    #[inline]
    pub fn lookup(&mut self, pid: u32, key: u64) -> bool {
        self.stamp += 1;
        let stamp = self.stamp;
        let t = tag(pid, key);
        let (base, len) = self.set(key);
        if let Some(e) = self.entries[base..base + len].iter_mut().find(|e| e.tag == t) {
            e.stamp = stamp;
            self.hits += 1;
            true
        } else {
            self.misses += 1;
            false
        }
    }

    /// Records `n` consecutive guaranteed hits on a present entry in one
    /// step: equivalent to calling [`SetAssocTlb::lookup`] `n` times when
    /// every call would hit. The global LRU stamp advances by `n` and the
    /// entry takes the final stamp — no other entry's relative order can
    /// change, since repeated hits on one key only push its stamp past
    /// the rest. Returns `false` without any state change if the entry is
    /// absent (the caller falls back to per-access lookups).
    pub fn record_hits(&mut self, pid: u32, key: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        let stamp = self.stamp + n;
        let t = tag(pid, key);
        let (base, len) = self.set(key);
        if let Some(e) = self.entries[base..base + len].iter_mut().find(|e| e.tag == t) {
            e.stamp = stamp;
            self.stamp = stamp;
            self.hits += n;
            true
        } else {
            false
        }
    }

    /// Checks presence without updating LRU or statistics.
    pub fn probe(&self, pid: u32, key: u64) -> bool {
        let idx = self.set_index(key);
        let base = idx * self.assoc;
        let len = self.lens[idx] as usize;
        let t = tag(pid, key);
        self.entries[base..base + len].iter().any(|e| e.tag == t)
    }

    /// Inserts `(pid, key)`, evicting the set's LRU entry if full.
    /// Idempotent for present entries (refreshes LRU instead).
    pub fn insert(&mut self, pid: u32, key: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let assoc = self.assoc;
        let t = tag(pid, key);
        let idx = self.set_index(key);
        let base = idx * assoc;
        let len = self.lens[idx] as usize;
        let set = &mut self.entries[base..base + len];
        if let Some(e) = set.iter_mut().find(|e| e.tag == t) {
            e.stamp = stamp;
            return;
        }
        if len < assoc {
            self.entries[base + len] = Entry { tag: t, stamp };
            self.lens[idx] += 1;
            return;
        }
        let lru = set
            .iter_mut()
            .min_by_key(|e| e.stamp)
            .expect("set is full, hence non-empty");
        *lru = Entry { tag: t, stamp };
    }

    /// [`SetAssocTlb::insert`] for a key the caller has just proven absent
    /// (its `lookup` missed with no intervening mutation of this
    /// structure): skips the redundant presence scan. Exactly equivalent
    /// to `insert` under that precondition — same stamp, same eviction.
    pub(crate) fn insert_absent(&mut self, pid: u32, key: u64) {
        self.stamp += 1;
        let stamp = self.stamp;
        let assoc = self.assoc;
        let t = tag(pid, key);
        let idx = self.set_index(key);
        let base = idx * assoc;
        let len = self.lens[idx] as usize;
        debug_assert!(!self.entries[base..base + len].iter().any(|e| e.tag == t));
        if len < assoc {
            self.entries[base + len] = Entry { tag: t, stamp };
            self.lens[idx] += 1;
            return;
        }
        let lru = self.entries[base..base + len]
            .iter_mut()
            .min_by_key(|e| e.stamp)
            .expect("set is full, hence non-empty");
        *lru = Entry { tag: t, stamp };
    }

    /// Drops from set `idx` every entry matching `gone` (compacting the
    /// set in place).
    fn evict_from_set(&mut self, idx: usize, mut gone: impl FnMut(&Entry) -> bool) {
        let base = idx * self.assoc;
        let len = self.lens[idx] as usize;
        let mut keep = 0usize;
        for i in 0..len {
            if !gone(&self.entries[base + i]) {
                self.entries[base + keep] = self.entries[base + i];
                keep += 1;
            }
        }
        self.lens[idx] = keep as u8;
    }

    /// Drops one entry if present.
    pub fn invalidate(&mut self, pid: u32, key: u64) {
        let idx = self.set_index(key);
        let t = tag(pid, key);
        self.evict_from_set(idx, |e| e.tag == t);
    }

    /// Drops all entries of a process (context switch with ASID reuse,
    /// or process exit).
    pub fn invalidate_pid(&mut self, pid: u32) {
        let owner = (pid as u64) << KEY_BITS;
        for idx in 0..self.lens.len() {
            self.evict_from_set(idx, |e| e.tag & !KEY_MASK == owner);
        }
    }

    /// Drops every entry whose key satisfies the predicate for `pid`
    /// (range shootdowns).
    pub fn invalidate_if(&mut self, pid: u32, mut pred: impl FnMut(u64) -> bool) {
        let owner = (pid as u64) << KEY_BITS;
        for idx in 0..self.lens.len() {
            self.evict_from_set(idx, |e| e.tag & !KEY_MASK == owner && pred(e.tag & KEY_MASK));
        }
    }

    /// Lifetime hit count.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Lifetime miss count.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Current number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.lens.iter().map(|l| *l as usize).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lru_eviction_within_set() {
        // 4 entries, 2 ways -> 2 sets; keys 0,2,4 land in set 0.
        let mut t = SetAssocTlb::new(4, 2);
        t.insert(1, 0);
        t.insert(1, 2);
        assert!(t.lookup(1, 0)); // refresh 0; 2 becomes LRU
        t.insert(1, 4); // evicts 2
        assert!(t.probe(1, 0));
        assert!(!t.probe(1, 2));
        assert!(t.probe(1, 4));
    }

    #[test]
    fn reinsert_refreshes_instead_of_duplicating() {
        let mut t = SetAssocTlb::new(4, 2);
        t.insert(1, 0);
        t.insert(1, 0);
        assert_eq!(t.occupancy(), 1);
    }

    #[test]
    fn pid_isolation() {
        let mut t = SetAssocTlb::new(8, 2);
        t.insert(1, 5);
        assert!(!t.lookup(2, 5));
        t.insert(2, 5);
        assert!(t.lookup(1, 5) && t.lookup(2, 5));
        t.invalidate_pid(1);
        assert!(!t.probe(1, 5));
        assert!(t.probe(2, 5));
    }

    #[test]
    fn invalidate_single_and_predicate() {
        let mut t = SetAssocTlb::new(8, 4);
        for k in 0..6 {
            t.insert(1, k);
        }
        t.invalidate(1, 3);
        assert!(!t.probe(1, 3));
        t.invalidate_if(1, |k| k < 2);
        assert!(!t.probe(1, 0) && !t.probe(1, 1));
        assert!(t.probe(1, 4));
    }

    #[test]
    fn hit_miss_statistics() {
        let mut t = SetAssocTlb::new(4, 4);
        assert!(!t.lookup(1, 1));
        t.insert(1, 1);
        assert!(t.lookup(1, 1));
        assert_eq!((t.hits(), t.misses()), (1, 1));
    }

    #[test]
    fn record_hits_matches_n_lookups() {
        let mut bulk = SetAssocTlb::new(8, 2);
        let mut serial = bulk.clone();
        for k in [0u64, 2, 4] {
            bulk.insert(1, k);
            serial.insert(1, k);
        }
        assert!(bulk.record_hits(1, 2, 5));
        for _ in 0..5 {
            assert!(serial.lookup(1, 2));
        }
        assert_eq!(bulk.hits(), serial.hits());
        assert_eq!(bulk.misses(), serial.misses());
        // LRU order identical after the streak: inserting into the full
        // set 0 must evict the same victim.
        bulk.insert(1, 6);
        serial.insert(1, 6);
        for k in [0u64, 2, 4, 6] {
            assert_eq!(bulk.probe(1, k), serial.probe(1, k), "key {k}");
        }
        // Absent entry: no state change, caller falls back.
        let before_hits = bulk.hits();
        assert!(!bulk.record_hits(1, 100, 3));
        assert_eq!(bulk.hits(), before_hits);
    }

    #[test]
    fn capacity_bounds_occupancy() {
        let mut t = SetAssocTlb::new(8, 2);
        for k in 0..100 {
            t.insert(7, k);
        }
        assert!(t.occupancy() <= t.capacity());
        assert_eq!(t.capacity(), 8);
    }

    #[test]
    #[should_panic(expected = "associativity")]
    fn bad_geometry_rejected() {
        let _ = SetAssocTlb::new(10, 4);
    }
}
