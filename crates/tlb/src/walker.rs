//! Page-table walker with page-walk caches and a locality-aware cost model.
//!
//! x86-64 walks four levels for a 4 KB translation (PML4 → PDPT → PD → PT)
//! and three for a 2 MB translation (the PDE *is* the leaf). Hardware
//! page-walk caches (PWCs) short-circuit the upper levels; whether the
//! *leaf* fetch hits the data caches depends on access locality: a PT page
//! holds 512 consecutive PTEs, so sequential access patterns fetch leaf
//! PTEs from L1/L2 while pointer-chasing patterns miss to DRAM.
//!
//! This is the mechanism behind the paper's §2.4 observation that
//! working-set size is a poor predictor of MMU overhead: `mg.D` (24 GB,
//! sequential) pays almost nothing per walk while `cg.D` (16 GB, random)
//! pays a cold fetch nearly every time.

use crate::config::TlbConfig;
use crate::tlb::SetAssocTlb;
use hawkeye_metrics::Cycles;
use hawkeye_vm::{PageSize, Vpn};

/// The simulated page-table walker.
///
/// # Examples
///
/// ```
/// use hawkeye_tlb::{PageWalker, TlbConfig};
/// use hawkeye_vm::{Vpn, PageSize};
///
/// let mut w = PageWalker::new(&TlbConfig::haswell());
/// let cold = w.walk(1, Vpn(0), PageSize::Base, false);
/// let warm = w.walk(1, Vpn(1), PageSize::Base, false);
/// assert!(warm < cold, "second walk reuses the page-walk caches");
/// ```
#[derive(Debug, Clone)]
pub struct PageWalker {
    /// PDE cache: key = vpn >> 9 (one entry per 2 MB of VA).
    pwc_pde: SetAssocTlb,
    /// PDPTE cache: key = vpn >> 18 (one entry per 1 GB of VA).
    pwc_pdpte: SetAssocTlb,
    fetch_hot: u64,
    fetch_cold: u64,
    nested_factor: u64,
    walks: u64,
}

impl PageWalker {
    /// Creates a walker with the PWC geometry and fetch costs of `cfg`.
    pub fn new(cfg: &TlbConfig) -> Self {
        PageWalker {
            pwc_pde: SetAssocTlb::new(cfg.pwc_pde_entries, cfg.pwc_pde_entries.min(4)),
            pwc_pdpte: SetAssocTlb::new(cfg.pwc_pdpte_entries, cfg.pwc_pdpte_entries),
            fetch_hot: cfg.walk_fetch_hot,
            fetch_cold: cfg.walk_fetch_cold,
            nested_factor: cfg.nested_fetch_factor,
            walks: 0,
        }
    }

    /// Walks the page table for `vpn`, returning the walk duration.
    ///
    /// `nested` models two-dimensional (guest + host) walks by scaling
    /// every fetch, reflecting the up-to-24-step nested walk.
    pub fn walk(&mut self, pid: u32, vpn: Vpn, size: PageSize, nested: bool) -> Cycles {
        self.walks += 1;
        let pde_key = vpn.0 >> 9;
        let pdpte_key = vpn.0 >> 18;
        let factor = if nested { self.nested_factor } else { 1 };

        let mut fetches_hot: u64 = 0;
        let mut fetches_cold: u64 = 0;

        let pde_hit = self.pwc_pde.lookup(pid, pde_key);
        if !pde_hit {
            let pdpte_hit = self.pwc_pdpte.lookup(pid, pdpte_key);
            if !pdpte_hit {
                // PML4E + PDPTE fetches; upper levels cover huge spans and
                // are essentially always cache-resident.
                fetches_hot += 2;
                self.pwc_pdpte.insert_absent(pid, pdpte_key);
            }
            // PDE fetch: cold when this 2 MB neighbourhood has not been
            // walked recently.
            fetches_cold += 1;
            self.pwc_pde.insert_absent(pid, pde_key);
            if size == PageSize::Base {
                // Leaf PTE fetch shares the PT page's cache line locality
                // with the PDE: a cold PDE implies a cold leaf.
                fetches_cold += 1;
            }
        } else if size == PageSize::Base {
            // Warm neighbourhood: the PT page is cache-resident.
            fetches_hot += 1;
        }
        // Huge translation with PDE-PWC hit: the PWC itself supplies the
        // leaf; only minimal latency remains.
        let base = if pde_hit && size == PageSize::Huge { self.fetch_hot / 2 } else { 0 };

        Cycles::new(factor * (base + fetches_hot * self.fetch_hot + fetches_cold * self.fetch_cold))
    }

    /// Drops a process's PWC entries (exit / flush).
    pub fn invalidate_pid(&mut self, pid: u32) {
        self.pwc_pde.invalidate_pid(pid);
        self.pwc_pdpte.invalidate_pid(pid);
    }

    /// Drops the PWC entry covering one huge region (after remapping it).
    pub fn invalidate_region(&mut self, pid: u32, region: u64) {
        self.pwc_pde.invalidate(pid, region);
    }

    /// Number of walks performed.
    pub fn walks(&self) -> u64 {
        self.walks
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn walker() -> PageWalker {
        PageWalker::new(&TlbConfig::haswell())
    }

    #[test]
    fn sequential_walks_are_cheap_after_first() {
        let mut w = walker();
        let first = w.walk(1, Vpn(0), PageSize::Base, false);
        // Pages 1..512 share the PDE/PT page with page 0.
        let next = w.walk(1, Vpn(1), PageSize::Base, false);
        assert!(next.get() <= TlbConfig::haswell().walk_fetch_hot);
        assert!(first.get() >= TlbConfig::haswell().walk_fetch_cold);
    }

    #[test]
    fn random_far_walks_stay_cold() {
        let mut w = walker();
        let mut total = 0;
        // Strides of 2 MB+ defeat the PDE cache (32 entries).
        for i in 0..1000u64 {
            total += w.walk(1, Vpn((i * 97) << 9), PageSize::Base, false).get();
        }
        let avg = total / 1000;
        assert!(avg >= TlbConfig::haswell().walk_fetch_cold, "avg {avg}");
    }

    #[test]
    fn huge_walks_cheaper_than_base_when_cold() {
        let mut wb = walker();
        let mut wh = walker();
        let base = wb.walk(1, Vpn(123 << 9), PageSize::Base, false);
        let huge = wh.walk(1, Vpn(123 << 9), PageSize::Huge, false);
        assert!(huge < base, "huge walk skips the leaf level");
    }

    #[test]
    fn nested_walks_scale_costs() {
        let mut wn = walker();
        let mut wv = walker();
        let native = wn.walk(1, Vpn(7 << 9), PageSize::Base, false);
        let nested = wv.walk(1, Vpn(7 << 9), PageSize::Base, true);
        assert_eq!(nested.get(), native.get() * TlbConfig::haswell().nested_fetch_factor);
    }

    #[test]
    fn invalidation_makes_next_walk_cold() {
        let mut w = walker();
        let _ = w.walk(1, Vpn(0), PageSize::Base, false);
        let warm = w.walk(1, Vpn(1), PageSize::Base, false);
        w.invalidate_region(1, 0);
        let cold = w.walk(1, Vpn(2), PageSize::Base, false);
        assert!(cold > warm);
        assert_eq!(w.walks(), 3);
    }
}
