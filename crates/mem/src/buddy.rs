//! Binary buddy allocator with split **zero** / **non-zero** free lists.
//!
//! This is the substrate for HawkEye's async pre-zeroing (§3.1): pages
//! released by applications enter the *non-zero* lists; a rate-limited
//! daemon moves blocks to the *zero* lists after clearing them (see
//! [`PhysMemory::prezero_step`]); allocations that need zeroed memory are
//! served preferentially from the zero lists, while copy-on-write and
//! file-backed allocations prefer the non-zero lists so pre-zeroed memory
//! is not wasted on them.
//!
//! Zero-ness is authoritative in the per-frame [`PageContent`] tags; a free
//! block sits in the zero list iff *all* its frames are zero-filled.

use crate::content::PageContent;
use crate::error::AllocError;
use crate::frame::{Frame, FrameState, NOT_FREE_HEAD, NO_LINK};
use crate::types::{Order, Pfn, MAX_ORDER};
use hawkeye_metrics::MetricsSink;
use hawkeye_trace::{TraceEvent, TraceSink};

const NORDERS: usize = MAX_ORDER.0 as usize + 1;

/// Which free list an allocation prefers.
///
/// Either preference falls back to the other list when the preferred one
/// cannot satisfy the request; [`Allocation::was_zeroed`] reports what the
/// caller actually got so it can charge synchronous zeroing cost if needed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AllocPref {
    /// Prefer pre-zeroed blocks (anonymous zero-fill allocations).
    #[default]
    Zeroed,
    /// Prefer non-zeroed blocks (COW targets, file cache) to conserve the
    /// zeroed pool.
    NonZeroed,
}

/// The result of a successful allocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Allocation {
    /// First frame of the allocated block (aligned to `order`).
    pub pfn: Pfn,
    /// Block order.
    pub order: Order,
    /// Whether every frame in the block was already zero-filled.
    pub was_zeroed: bool,
}

#[derive(Debug, Clone, Copy, Default)]
struct FreeList {
    head: u32,
    blocks: u64,
}

impl FreeList {
    const EMPTY: FreeList = FreeList { head: NO_LINK, blocks: 0 };
}

/// Simulated physical memory: a frame table plus the buddy allocator.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::{PhysMemory, AllocPref, Order, HUGE_ORDER};
///
/// let mut pm = PhysMemory::new(4096);
/// let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
/// let h = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
/// assert_eq!(pm.allocated_pages(), 513);
/// pm.free(a.pfn, a.order);
/// pm.free(h.pfn, h.order);
/// assert_eq!(pm.allocated_pages(), 0);
/// assert_eq!(pm.free_pages(), 4096);
/// ```
#[derive(Debug, Clone)]
pub struct PhysMemory {
    frames: Vec<Frame>,
    /// `[order][zeroed as usize]`
    lists: [[FreeList; 2]; NORDERS],
    free_pages: u64,
    zeroed_free_pages: u64,
    /// Whether free blocks of different zero-ness may merge (demoting the
    /// merged block to non-zero). HawkEye keeps this off to protect the
    /// pre-zeroed pool; baselines that never read the zero lists turn it on
    /// to match vanilla Linux merging.
    cross_merge: bool,
    /// Event journal handle; disabled (no-op) unless a trace scope attaches.
    trace: TraceSink,
    /// Cycle-attribution handle; disabled (no-op) unless a registry scope
    /// attaches.
    metrics: MetricsSink,
}

impl PhysMemory {
    /// Creates `total_frames` of physical memory, all free and zero-filled
    /// (freshly booted machine). Cross-zero-ness merging is disabled
    /// (HawkEye semantics) — see [`PhysMemory::with_cross_merge`].
    ///
    /// # Panics
    ///
    /// Panics if `total_frames` is 0 or not a multiple of the largest buddy
    /// block (`2^MAX_ORDER` frames), which keeps the frame table uniform.
    pub fn new(total_frames: u64) -> Self {
        Self::with_cross_merge(total_frames, false)
    }

    /// Creates physical memory choosing the merge policy: when
    /// `cross_merge` is true, free buddies of different zero-ness merge
    /// into a non-zero block (vanilla-Linux behaviour, for baselines that
    /// do not maintain a pre-zeroed pool); when false, such merges are
    /// deferred until the pre-zeroing daemon equalizes the blocks.
    ///
    /// # Panics
    ///
    /// Same conditions as [`PhysMemory::new`].
    pub fn with_cross_merge(total_frames: u64, cross_merge: bool) -> Self {
        let block = MAX_ORDER.pages();
        assert!(total_frames > 0, "physical memory cannot be empty");
        assert_eq!(
            total_frames % block,
            0,
            "total_frames must be a multiple of {block} (the max buddy block)"
        );
        let mut pm = PhysMemory {
            frames: vec![Frame::default(); total_frames as usize],
            lists: [[FreeList::EMPTY; 2]; NORDERS],
            free_pages: 0,
            zeroed_free_pages: 0,
            cross_merge,
            trace: TraceSink::default(),
            metrics: MetricsSink::default(),
        };
        let mut pfn = 0;
        while pfn < total_frames {
            pm.insert_free_block(Pfn(pfn), MAX_ORDER);
            pfn += block;
        }
        pm
    }

    /// Install the event-journal sink used by pre-zeroing and compaction.
    /// The default sink is disabled (every emit is a no-op).
    pub fn set_trace_sink(&mut self, trace: TraceSink) {
        self.trace = trace;
    }

    /// The event-journal sink (for free functions like `compact` that
    /// operate on this memory).
    pub fn trace(&self) -> &TraceSink {
        &self.trace
    }

    /// Install the cycle-attribution sink used by the pre-zeroing step.
    /// The default sink is disabled (every charge is a no-op).
    pub fn set_metrics_sink(&mut self, metrics: MetricsSink) {
        self.metrics = metrics;
    }

    /// Total number of frames.
    pub fn total_frames(&self) -> u64 {
        self.frames.len() as u64
    }

    /// Number of free base pages.
    pub fn free_pages(&self) -> u64 {
        self.free_pages
    }

    /// Number of free base pages that are pre-zeroed.
    pub fn zeroed_free_pages(&self) -> u64 {
        self.zeroed_free_pages
    }

    /// Number of free base pages that still need zeroing.
    pub fn nonzeroed_free_pages(&self) -> u64 {
        self.free_pages - self.zeroed_free_pages
    }

    /// Number of allocated base pages.
    pub fn allocated_pages(&self) -> u64 {
        self.total_frames() - self.free_pages
    }

    /// Fraction of memory allocated, 0.0–1.0 (drives the watermark logic of
    /// HawkEye's bloat recovery).
    pub fn utilization(&self) -> f64 {
        self.allocated_pages() as f64 / self.total_frames() as f64
    }

    /// Shared view of a frame's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn frame(&self, pfn: Pfn) -> &Frame {
        &self.frames[pfn.index()]
    }

    /// Mutable view of a frame's metadata.
    ///
    /// # Panics
    ///
    /// Panics if `pfn` is out of range.
    pub fn frame_mut(&mut self, pfn: Pfn) -> &mut Frame {
        &mut self.frames[pfn.index()]
    }

    /// Allocates a block of `order` contiguous, aligned frames.
    ///
    /// The preferred free list is searched from `order` upward, then the
    /// other list. Returns the block and whether it was entirely
    /// pre-zeroed.
    ///
    /// # Errors
    ///
    /// [`AllocError::InvalidOrder`] if `order > MAX_ORDER`;
    /// [`AllocError::OutOfMemory`] if no block of sufficient order exists
    /// in either list (the buddy allocator does not compact here — see
    /// [`crate::compact`]).
    pub fn alloc(&mut self, order: Order, pref: AllocPref) -> Result<Allocation, AllocError> {
        if order > MAX_ORDER {
            return Err(AllocError::InvalidOrder { order });
        }
        let preferred = match pref {
            AllocPref::Zeroed => 1usize,
            AllocPref::NonZeroed => 0usize,
        };
        let found = self
            .find_block(order, preferred)
            .or_else(|| self.find_block(order, 1 - preferred));
        let (pfn, at_order, listz) = found.ok_or(AllocError::OutOfMemory { order })?;
        self.remove_free_block(pfn, at_order, listz);
        // Split down to the requested order, returning upper halves.
        let mut cur_order = at_order;
        while cur_order > order {
            cur_order = Order(cur_order.0 - 1);
            let upper = Pfn(pfn.0 + cur_order.pages());
            self.insert_free_block_nomerge(upper, cur_order);
        }
        let was_zeroed = self.block_is_zeroed(pfn, order);
        self.mark_allocated(pfn, order);
        // How often the pre-zeroed pool absorbs a zero-demand allocation
        // (the paper's §3.1 win) vs. forcing synchronous zeroing.
        if pref == AllocPref::Zeroed {
            if was_zeroed {
                self.metrics.add("mem.zeroed_alloc_hits", order.pages());
            } else {
                self.metrics.add("mem.zeroed_alloc_misses", order.pages());
            }
        }
        Ok(Allocation { pfn, order, was_zeroed })
    }

    /// Frees the block of `order` frames starting at `pfn`, merging with
    /// free buddies. The frames' content tags are preserved, so a block
    /// dirtied by the application lands in the non-zero list.
    ///
    /// # Panics
    ///
    /// Panics if the block is not currently allocated, or `pfn` is not
    /// aligned to `order`.
    pub fn free(&mut self, pfn: Pfn, order: Order) {
        assert!(pfn.is_aligned(order), "{pfn} not aligned to {order}");
        for i in 0..order.pages() {
            let f = &mut self.frames[pfn.index() + i as usize];
            assert_eq!(f.state, FrameState::Allocated, "double free of {}", Pfn(pfn.0 + i));
            f.reset_user_meta();
        }
        self.insert_free_block(pfn, order);
    }

    /// Zero-fills the frames of an *allocated* block (synchronous zeroing
    /// on the page-fault path). Cost accounting is the caller's job.
    ///
    /// # Panics
    ///
    /// Panics if any frame in the block is free.
    pub fn zero_block(&mut self, pfn: Pfn, order: Order) {
        for i in 0..order.pages() {
            let f = &mut self.frames[pfn.index() + i as usize];
            assert_eq!(f.state, FrameState::Allocated, "zeroing a free frame");
            f.set_content(PageContent::Zero);
        }
    }

    /// One step of the async pre-zeroing daemon: takes up to `max_pages`
    /// frames from the non-zero free lists, zero-fills them, and returns
    /// them to the zero lists. Returns the number of pages zeroed (0 when
    /// the non-zero lists are empty or the budget is 0).
    ///
    /// Large blocks are split so a small budget still makes progress.
    pub fn prezero_step(&mut self, max_pages: u64) -> u64 {
        let mut budget = max_pages;
        let mut zeroed = 0;
        while budget > 0 {
            // Smallest non-zero block that exists.
            let Some((pfn, order)) = self.pop_smallest_nonzero() else { break };
            let mut order = order;
            // Split until the block fits in the remaining budget.
            while order.pages() > budget && order.0 > 0 {
                order = Order(order.0 - 1);
                let upper = Pfn(pfn.0 + order.pages());
                self.insert_free_block_nomerge(upper, order);
            }
            if order.pages() > budget {
                // budget smaller than a single page cannot happen (order 0
                // is 1 page); defensive.
                self.insert_free_block_nomerge(pfn, order);
                break;
            }
            for i in 0..order.pages() {
                self.frames[pfn.index() + i as usize].set_content(PageContent::Zero);
            }
            // Reinsert: merging may now combine zeroed buddies.
            self.insert_free_block_raw(pfn, order);
            zeroed += order.pages();
            budget -= order.pages();
        }
        if zeroed > 0 {
            self.trace.emit(0, TraceEvent::PreZero { pages: zeroed });
            self.metrics.add("mem.prezeroed_pages", zeroed);
        }
        zeroed
    }

    /// Whether every frame of the (free or allocated) block is zero-filled.
    pub fn block_is_zeroed(&self, pfn: Pfn, order: Order) -> bool {
        (0..order.pages()).all(|i| self.frames[pfn.index() + i as usize].is_zeroed())
    }

    /// Largest order for which a free block exists (in either list).
    pub fn largest_free_order(&self) -> Option<Order> {
        (0..NORDERS)
            .rev()
            .find(|&o| self.lists[o][0].blocks + self.lists[o][1].blocks > 0)
            .map(|o| Order(o as u8))
    }

    /// Histogram of free blocks by order: `hist[order] = block count`
    /// (zero + non-zero lists combined). Input to the FMFI computation.
    pub fn free_block_histogram(&self) -> [u64; NORDERS] {
        let mut h = [0u64; NORDERS];
        for (o, slot) in h.iter_mut().enumerate() {
            *slot = self.lists[o][0].blocks + self.lists[o][1].blocks;
        }
        h
    }

    /// Number of free blocks of exactly `order` in the zero list.
    pub fn zeroed_blocks(&self, order: Order) -> u64 {
        self.lists[order.index()][1].blocks
    }

    /// Number of free blocks of exactly `order` in the non-zero list.
    pub fn nonzeroed_blocks(&self, order: Order) -> u64 {
        self.lists[order.index()][0].blocks
    }

    // ---- internals ------------------------------------------------------

    fn find_block(&self, order: Order, listz: usize) -> Option<(Pfn, Order, usize)> {
        (order.index()..NORDERS).find_map(|o| {
            let head = self.lists[o][listz].head;
            (head != NO_LINK).then_some((Pfn(head as u64), Order(o as u8), listz))
        })
    }

    fn pop_smallest_nonzero(&mut self) -> Option<(Pfn, Order)> {
        for o in 0..NORDERS {
            let head = self.lists[o][0].head;
            if head != NO_LINK {
                let pfn = Pfn(head as u64);
                let order = Order(o as u8);
                self.remove_free_block(pfn, order, 0);
                return Some((pfn, order));
            }
        }
        None
    }

    fn mark_allocated(&mut self, pfn: Pfn, order: Order) {
        for i in 0..order.pages() {
            let f = &mut self.frames[pfn.index() + i as usize];
            f.state = FrameState::Allocated;
            f.free_order = NOT_FREE_HEAD;
        }
    }

    /// Inserts a free block with buddy merging.
    fn insert_free_block(&mut self, pfn: Pfn, order: Order) {
        self.insert_free_block_raw(pfn, order);
    }

    fn insert_free_block_raw(&mut self, mut pfn: Pfn, mut order: Order) {
        // Merge upward while the buddy is a free head of the same order and
        // the merge policy allows combining the two blocks' zero-ness.
        let mut zeroed = self.block_is_zeroed(pfn, order);
        while order < MAX_ORDER {
            let buddy = pfn.buddy(order);
            if buddy.index() >= self.frames.len() {
                break;
            }
            let b = &self.frames[buddy.index()];
            if b.state != FrameState::FreeHead || b.free_order != order.0 {
                break;
            }
            let bz = self.block_is_zeroed(buddy, order);
            if bz != zeroed && !self.cross_merge {
                break;
            }
            self.remove_free_block(buddy, order, bz as usize);
            pfn = pfn.min(buddy);
            order = Order(order.0 + 1);
            zeroed = zeroed && bz;
        }
        self.insert_free_block_nomerge(pfn, order);
    }

    fn insert_free_block_nomerge(&mut self, pfn: Pfn, order: Order) {
        let zeroed = self.block_is_zeroed(pfn, order);
        let listz = zeroed as usize;
        for i in 0..order.pages() {
            let f = &mut self.frames[pfn.index() + i as usize];
            f.state = FrameState::FreeTail;
            f.free_order = NOT_FREE_HEAD;
            f.prev = NO_LINK;
            f.next = NO_LINK;
        }
        let head = self.lists[order.index()][listz].head;
        {
            let f = &mut self.frames[pfn.index()];
            f.state = FrameState::FreeHead;
            f.free_order = order.0;
            f.next = head;
        }
        if head != NO_LINK {
            self.frames[head as usize].prev = pfn.0 as u32;
        }
        self.lists[order.index()][listz].head = pfn.0 as u32;
        self.lists[order.index()][listz].blocks += 1;
        self.free_pages += order.pages();
        if zeroed {
            self.zeroed_free_pages += order.pages();
        }
    }

    fn remove_free_block(&mut self, pfn: Pfn, order: Order, listz: usize) {
        let (prev, next) = {
            let f = &self.frames[pfn.index()];
            debug_assert_eq!(f.state, FrameState::FreeHead);
            debug_assert_eq!(f.free_order, order.0);
            (f.prev, f.next)
        };
        if prev != NO_LINK {
            self.frames[prev as usize].next = next;
        } else {
            debug_assert_eq!(self.lists[order.index()][listz].head, pfn.0 as u32);
            self.lists[order.index()][listz].head = next;
        }
        if next != NO_LINK {
            self.frames[next as usize].prev = prev;
        }
        let f = &mut self.frames[pfn.index()];
        f.state = FrameState::FreeTail;
        f.free_order = NOT_FREE_HEAD;
        f.prev = NO_LINK;
        f.next = NO_LINK;
        self.lists[order.index()][listz].blocks -= 1;
        self.free_pages -= order.pages();
        if listz == 1 {
            self.zeroed_free_pages -= order.pages();
        }
    }

    // ---- crate-internal hooks for the compactor --------------------------

    /// Removes a specific free block from its list (compaction claim).
    pub(crate) fn claim_remove(&mut self, head: Pfn, order: Order, listz: usize) {
        self.remove_free_block(head, order, listz);
    }

    /// Marks a (list-removed) frame as kernel-claimed: allocated, unmovable,
    /// unowned.
    pub(crate) fn claim_mark(&mut self, pfn: Pfn) {
        let f = &mut self.frames[pfn.index()];
        f.state = FrameState::Allocated;
        f.free_order = NOT_FREE_HEAD;
        f.set_owner(None);
        f.set_movable(false);
    }

    /// Reinserts a single (list-removed) frame into the free lists.
    pub(crate) fn claim_reinsert(&mut self, pfn: Pfn) {
        self.insert_free_block_raw(pfn, Order(0));
    }

    /// Debug invariant check: list membership, counters, and zero-ness all
    /// agree. Used by tests and property tests; O(frames).
    pub fn check_invariants(&self) {
        let mut free = 0u64;
        let mut zeroed_free = 0u64;
        let mut seen_heads = 0u64;
        for (o, pair) in self.lists.iter().enumerate() {
            for (z, list) in pair.iter().enumerate() {
                let mut cur = list.head;
                let mut count = 0u64;
                let mut prev = NO_LINK;
                while cur != NO_LINK {
                    let f = &self.frames[cur as usize];
                    assert_eq!(f.state, FrameState::FreeHead);
                    assert_eq!(f.free_order as usize, o);
                    assert_eq!(f.prev, prev);
                    let order = Order(o as u8);
                    let pfn = Pfn(cur as u64);
                    assert!(pfn.is_aligned(order));
                    assert_eq!(self.block_is_zeroed(pfn, order), z == 1, "block {pfn} in wrong list");
                    free += order.pages();
                    if z == 1 {
                        zeroed_free += order.pages();
                    }
                    count += 1;
                    seen_heads += 1;
                    prev = cur;
                    cur = f.next;
                }
                assert_eq!(count, list.blocks, "block counter mismatch at order {o} z {z}");
            }
        }
        assert_eq!(free, self.free_pages, "free page counter mismatch");
        assert_eq!(zeroed_free, self.zeroed_free_pages, "zeroed counter mismatch");
        let heads = self
            .frames
            .iter()
            .filter(|f| f.state == FrameState::FreeHead)
            .count() as u64;
        assert_eq!(heads, seen_heads, "orphan free heads exist");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HUGE_ORDER;

    #[test]
    fn boot_memory_is_all_zeroed() {
        let pm = PhysMemory::new(2048);
        assert_eq!(pm.free_pages(), 2048);
        assert_eq!(pm.zeroed_free_pages(), 2048);
        assert_eq!(pm.allocated_pages(), 0);
        pm.check_invariants();
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_unaligned_total() {
        let _ = PhysMemory::new(1000);
    }

    #[test]
    fn alloc_free_roundtrip_restores_state() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(Order(3), AllocPref::Zeroed).unwrap();
        assert!(a.was_zeroed);
        assert_eq!(pm.free_pages(), 1024 - 8);
        pm.check_invariants();
        pm.free(a.pfn, a.order);
        assert_eq!(pm.free_pages(), 1024);
        // All merged back into max-order blocks.
        assert_eq!(pm.largest_free_order(), Some(MAX_ORDER));
        pm.check_invariants();
    }

    #[test]
    fn dirty_free_lands_in_nonzero_list() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
        pm.frame_mut(a.pfn).set_content(PageContent::non_zero(5));
        pm.free(a.pfn, a.order);
        // Without cross-merging, the dirty page stays isolated in the
        // non-zero list instead of demoting 1023 zeroed buddies.
        assert_eq!(pm.nonzeroed_free_pages(), 1);
        pm.check_invariants();
    }

    #[test]
    fn out_of_memory_reported() {
        let mut pm = PhysMemory::new(1024);
        // 1024 frames = one max-order block; a second max-order alloc fails.
        let _a = pm.alloc(MAX_ORDER, AllocPref::Zeroed).unwrap();
        let err = pm.alloc(Order(0), AllocPref::Zeroed).unwrap_err();
        assert!(matches!(err, AllocError::OutOfMemory { .. }));
    }

    #[test]
    fn invalid_order_rejected() {
        let mut pm = PhysMemory::new(1024);
        let err = pm.alloc(Order(MAX_ORDER.0 + 1), AllocPref::Zeroed).unwrap_err();
        assert!(matches!(err, AllocError::InvalidOrder { .. }));
    }

    #[test]
    fn allocation_prefers_requested_list() {
        let mut pm = PhysMemory::new(2048);
        // Dirty one huge block and free it -> non-zero list.
        let a = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
        for i in 0..HUGE_ORDER.pages() {
            pm.frame_mut(Pfn(a.pfn.0 + i)).set_content(PageContent::non_zero(0));
        }
        pm.free(a.pfn, a.order);
        pm.check_invariants();
        // A non-zero-preferring allocation takes the dirty block.
        let b = pm.alloc(HUGE_ORDER, AllocPref::NonZeroed).unwrap();
        assert!(!b.was_zeroed);
        assert_eq!(b.pfn, a.pfn);
        // A zero-preferring allocation gets pre-zeroed memory.
        let c = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
        assert!(c.was_zeroed);
    }

    #[test]
    fn fallback_to_other_list_when_preferred_empty() {
        let mut pm = PhysMemory::new(1024);
        // Dirty everything: allocate all, dirty, free.
        let a = pm.alloc(MAX_ORDER, AllocPref::Zeroed).unwrap();
        for i in 0..MAX_ORDER.pages() {
            pm.frame_mut(Pfn(i)).set_content(PageContent::non_zero(1));
        }
        pm.free(a.pfn, a.order);
        assert_eq!(pm.zeroed_free_pages(), 0);
        let b = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
        assert!(!b.was_zeroed, "fell back to non-zero list");
    }

    #[test]
    fn prezero_step_moves_pages_to_zero_list() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(MAX_ORDER, AllocPref::Zeroed).unwrap();
        for i in 0..MAX_ORDER.pages() {
            pm.frame_mut(Pfn(i)).set_content(PageContent::non_zero(1));
        }
        pm.free(a.pfn, a.order);
        assert_eq!(pm.zeroed_free_pages(), 0);
        // Rate-limited: only 100 pages this step.
        let z = pm.prezero_step(100);
        assert!(z > 0 && z <= 100, "zeroed {z}");
        assert_eq!(pm.zeroed_free_pages(), z);
        pm.check_invariants();
        // Finish the job.
        let mut total = z;
        loop {
            let z = pm.prezero_step(100);
            if z == 0 {
                break;
            }
            total += z;
        }
        assert_eq!(total, 1024);
        assert_eq!(pm.zeroed_free_pages(), 1024);
        // Everything merged back to one max-order zero block.
        assert_eq!(pm.zeroed_blocks(MAX_ORDER), 1);
        pm.check_invariants();
    }

    #[test]
    fn prezero_step_zero_budget_is_noop() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
        pm.frame_mut(a.pfn).set_content(PageContent::non_zero(1));
        pm.free(a.pfn, a.order);
        assert_eq!(pm.prezero_step(0), 0);
        pm.check_invariants();
    }

    #[test]
    fn zero_block_on_allocated_pages() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(Order(2), AllocPref::Zeroed).unwrap();
        for i in 0..4 {
            pm.frame_mut(Pfn(a.pfn.0 + i)).set_content(PageContent::non_zero(3));
        }
        pm.zero_block(a.pfn, a.order);
        assert!(pm.block_is_zeroed(a.pfn, a.order));
    }

    #[test]
    fn histogram_reflects_splits() {
        let mut pm = PhysMemory::new(1024);
        let _a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
        let h = pm.free_block_histogram();
        // Splitting one max-order block for an order-0 alloc leaves one
        // free block at each order 0..MAX_ORDER-1.
        for (o, count) in h.iter().enumerate().take(MAX_ORDER.index()) {
            assert_eq!(*count, 1, "order {o}");
        }
        assert_eq!(h[MAX_ORDER.index()], 0);
    }

    #[test]
    fn utilization_tracks_allocation() {
        let mut pm = PhysMemory::new(1024);
        assert_eq!(pm.utilization(), 0.0);
        let _a = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
        assert!((pm.utilization() - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut pm = PhysMemory::new(1024);
        let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
        pm.free(a.pfn, a.order);
        pm.free(a.pfn, a.order);
    }

    #[test]
    fn many_small_allocs_exhaust_exactly() {
        let mut pm = PhysMemory::new(1024);
        let mut got = Vec::new();
        while let Ok(a) = pm.alloc(Order(0), AllocPref::Zeroed) {
            got.push(a.pfn);
        }
        assert_eq!(got.len(), 1024);
        assert_eq!(pm.free_pages(), 0);
        // all distinct
        let mut sorted = got.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), 1024);
        for pfn in got {
            pm.free(pfn, Order(0));
        }
        assert_eq!(pm.largest_free_order(), Some(MAX_ORDER));
        pm.check_invariants();
    }
}
