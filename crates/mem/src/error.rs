//! Error types of the physical-memory layer.

use crate::types::Order;
use std::error::Error;
use std::fmt;

/// Failure of a physical-memory allocation.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::{PhysMemory, AllocPref, AllocError, MAX_ORDER, Order};
///
/// let mut pm = PhysMemory::new(1024);
/// let _ = pm.alloc(MAX_ORDER, AllocPref::Zeroed)?;
/// let err = pm.alloc(Order(0), AllocPref::Zeroed).unwrap_err();
/// assert!(matches!(err, AllocError::OutOfMemory { .. }));
/// # Ok::<(), AllocError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AllocError {
    /// No free block of at least the requested order exists.
    OutOfMemory {
        /// The requested order.
        order: Order,
    },
    /// The requested order exceeds [`crate::MAX_ORDER`].
    InvalidOrder {
        /// The requested order.
        order: Order,
    },
}

impl fmt::Display for AllocError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AllocError::OutOfMemory { order } => {
                write!(f, "out of memory allocating an {order} block")
            }
            AllocError::InvalidOrder { order } => {
                write!(f, "requested {order} exceeds the maximum buddy order")
            }
        }
    }
}

impl Error for AllocError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = AllocError::OutOfMemory { order: Order(9) };
        assert!(e.to_string().contains("order-9"));
        let e = AllocError::InvalidOrder { order: Order(20) };
        assert!(e.to_string().contains("maximum"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AllocError>();
    }
}
