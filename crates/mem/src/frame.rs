//! Per-frame metadata: the simulator's `struct page` analogue.
//!
//! Each 4 KB physical frame carries its allocation state, a kind (anonymous,
//! file-backed, pinned), an optional reverse-map owner tag (process + virtual
//! page, used by compaction to update page tables when migrating), a
//! movability flag, and the page-content tag from [`crate::content`].

use crate::content::PageContent;
use std::fmt;

/// What an allocated frame is used for. Determines movability defaults and
/// which free list (zero / non-zero) should service it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FrameKind {
    /// Anonymous user memory (the only kind Linux THP backs with huge
    /// pages). Movable by compaction unless part of a huge mapping.
    #[default]
    Anon,
    /// File-cache page. Reclaimable, movable.
    File,
    /// Pinned/unmovable allocation (kernel metadata, DMA, ...). The
    /// fragmentation antagonist uses these to pin scattered frames.
    Pinned,
}

/// Reverse-map entry: which process/virtual page an allocated frame backs.
///
/// `pid` is the owning process id; `vpn` the base-page virtual page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OwnerTag {
    /// Owning process id.
    pub pid: u32,
    /// Virtual page number (base-page granularity) this frame backs.
    pub vpn: u64,
}

pub(crate) const NO_LINK: u32 = u32::MAX;
pub(crate) const NOT_FREE_HEAD: u8 = u8::MAX;

/// Allocation state of a frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum FrameState {
    /// Allocated to a user (or reserved by the kernel during compaction).
    Allocated,
    /// Head of a free buddy block (order recorded in `free_order`).
    FreeHead,
    /// Interior frame of a free buddy block.
    FreeTail,
}

/// Metadata of one physical frame.
///
/// Instances live in [`crate::PhysMemory`]'s frame table and are accessed by
/// [`crate::PhysMemory::frame`] / [`crate::PhysMemory::frame_mut`].
#[derive(Debug, Clone)]
pub struct Frame {
    pub(crate) state: FrameState,
    /// Valid only when `state == FreeHead`.
    pub(crate) free_order: u8,
    /// Free-list linkage (valid only when `state == FreeHead`).
    pub(crate) prev: u32,
    pub(crate) next: u32,
    kind: FrameKind,
    owner: Option<OwnerTag>,
    movable: bool,
    content_tag: u16,
}

impl Default for Frame {
    fn default() -> Self {
        Frame {
            state: FrameState::FreeTail,
            free_order: NOT_FREE_HEAD,
            prev: NO_LINK,
            next: NO_LINK,
            kind: FrameKind::Anon,
            owner: None,
            movable: true,
            content_tag: PageContent::ZERO_TAG,
        }
    }
}

impl Frame {
    /// Whether the frame is currently free (head or interior of a free
    /// block).
    pub fn is_free(&self) -> bool {
        matches!(self.state, FrameState::FreeHead | FrameState::FreeTail)
    }

    /// The frame's allocation kind.
    pub fn kind(&self) -> FrameKind {
        self.kind
    }

    /// Sets the allocation kind.
    pub fn set_kind(&mut self, kind: FrameKind) {
        self.kind = kind;
        if kind == FrameKind::Pinned {
            self.movable = false;
        }
    }

    /// Reverse-map owner, if the frame backs a user mapping.
    pub fn owner(&self) -> Option<OwnerTag> {
        self.owner
    }

    /// Sets (or clears) the reverse-map owner.
    pub fn set_owner(&mut self, owner: Option<OwnerTag>) {
        self.owner = owner;
    }

    /// Whether compaction may migrate this frame.
    pub fn is_movable(&self) -> bool {
        self.movable && self.kind != FrameKind::Pinned
    }

    /// Marks the frame movable/unmovable (e.g. huge-mapped frames are
    /// unmovable as units; pinned frames are never movable).
    pub fn set_movable(&mut self, movable: bool) {
        self.movable = movable;
    }

    /// The frame's content summary.
    pub fn content(&self) -> PageContent {
        PageContent::from_tag(self.content_tag)
    }

    /// Overwrites the content summary (e.g. the workload wrote data, or the
    /// pre-zeroing daemon cleared the page).
    pub fn set_content(&mut self, content: PageContent) {
        self.content_tag = content.to_tag();
    }

    /// Whether the frame's content is all-zero.
    pub fn is_zeroed(&self) -> bool {
        self.content_tag == PageContent::ZERO_TAG
    }

    pub(crate) fn reset_user_meta(&mut self) {
        self.kind = FrameKind::Anon;
        self.owner = None;
        self.movable = true;
    }
}

impl fmt::Display for Frame {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let state = match self.state {
            FrameState::Allocated => "alloc",
            FrameState::FreeHead => "free-head",
            FrameState::FreeTail => "free",
        };
        write!(f, "[{state} {:?} {}]", self.kind, self.content())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_frame_is_free_and_zeroed() {
        let f = Frame::default();
        assert!(f.is_free());
        assert!(f.is_zeroed());
        assert!(f.is_movable());
        assert_eq!(f.owner(), None);
        assert_eq!(f.kind(), FrameKind::Anon);
    }

    #[test]
    fn pinned_frames_are_unmovable() {
        let mut f = Frame::default();
        f.set_kind(FrameKind::Pinned);
        assert!(!f.is_movable());
        // and cannot be made movable again while pinned
        f.set_movable(true);
        assert!(!f.is_movable());
    }

    #[test]
    fn content_round_trip() {
        let mut f = Frame::default();
        f.set_content(PageContent::non_zero(17));
        assert!(!f.is_zeroed());
        assert_eq!(f.content(), PageContent::non_zero(17));
        f.set_content(PageContent::Zero);
        assert!(f.is_zeroed());
    }

    #[test]
    fn owner_tag_set_and_clear() {
        let mut f = Frame::default();
        f.set_owner(Some(OwnerTag { pid: 3, vpn: 42 }));
        assert_eq!(f.owner().unwrap().vpn, 42);
        f.set_owner(None);
        assert!(f.owner().is_none());
    }

    #[test]
    fn display_is_nonempty() {
        assert!(!format!("{}", Frame::default()).is_empty());
    }
}
