//! Memory compaction: migrating movable frames to assemble free huge pages.
//!
//! This is the substrate `khugepaged` relies on when fragmentation is high:
//! Linux compacts memory to create the contiguous 2 MB blocks promotions
//! need. The simulator's compactor scans huge-page-aligned regions,
//! migrates movable base-page frames out of partially-free regions (cheapest
//! regions first), and lets buddy merging reassemble the region into a free
//! huge block.
//!
//! Migration must update the owning process's page table, which lives above
//! this crate — callers supply a `migrate(src, dst) -> bool` callback that
//! performs the remap and may veto the move.

use crate::buddy::{AllocPref, PhysMemory};
use crate::frame::{FrameState, OwnerTag};
use crate::types::{Order, Pfn, BASE_PAGES_PER_HUGE, HUGE_ORDER};
use hawkeye_trace::TraceEvent;

/// Outcome of one compaction pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CompactionStats {
    /// Huge-page-aligned regions examined.
    pub scanned_regions: u64,
    /// Base pages migrated.
    pub migrated_pages: u64,
    /// Regions fully freed into (at least) a huge block.
    pub huge_blocks_freed: u64,
}

#[derive(Debug, Clone, Copy)]
struct RegionSummary {
    base: Pfn,
    movable: u64,
}

/// Runs one compaction pass over `pm`, migrating at most `max_migrations`
/// base pages.
///
/// Regions containing unmovable frames are skipped. For each candidate
/// region (cheapest first), every movable allocated frame is migrated to a
/// destination obtained from the buddy allocator (non-zero list preferred),
/// with `migrate(src, dst, owner)` giving the owner a chance to update its
/// page table (the source frame's reverse-map tag is passed along); a
/// `false` return vetoes the move and abandons that region.
///
/// Returns statistics; `huge_blocks_freed` counts regions that ended fully
/// free (and therefore merged into free huge blocks).
pub fn compact<F>(pm: &mut PhysMemory, max_migrations: u64, mut migrate: F) -> CompactionStats
where
    F: FnMut(Pfn, Pfn, Option<OwnerTag>) -> bool,
{
    let mut stats = CompactionStats::default();
    let total = pm.total_frames();
    let mut candidates: Vec<RegionSummary> = Vec::new();
    let mut base = 0u64;
    while base + BASE_PAGES_PER_HUGE <= total {
        stats.scanned_regions += 1;
        let mut movable = 0u64;
        let mut free = 0u64;
        let mut unmovable = 0u64;
        for i in 0..BASE_PAGES_PER_HUGE {
            let f = pm.frame(Pfn(base + i));
            if f.is_free() {
                free += 1;
            } else if f.is_movable() {
                movable += 1;
            } else {
                unmovable += 1;
            }
        }
        if unmovable == 0 && movable > 0 && free > 0 {
            candidates.push(RegionSummary { base: Pfn(base), movable });
        }
        base += BASE_PAGES_PER_HUGE;
    }
    // Cheapest regions (fewest migrations to liberate a huge block) first.
    candidates.sort_by_key(|r| (r.movable, r.base.0));

    let mut budget = max_migrations;
    for region in candidates {
        if budget < region.movable {
            break;
        }
        if compact_region(pm, region.base, &mut budget, &mut stats, &mut migrate) {
            stats.huge_blocks_freed += 1;
        }
    }
    if stats.migrated_pages > 0 || stats.huge_blocks_freed > 0 {
        pm.trace().emit(
            0,
            TraceEvent::Compact {
                migrated: stats.migrated_pages,
                huge_blocks: stats.huge_blocks_freed,
            },
        );
    }
    stats
}

/// Attempts to fully liberate one region. Returns true if the region ended
/// entirely free.
fn compact_region<F>(
    pm: &mut PhysMemory,
    base: Pfn,
    budget: &mut u64,
    stats: &mut CompactionStats,
    migrate: &mut F,
) -> bool
where
    F: FnMut(Pfn, Pfn, Option<OwnerTag>) -> bool,
{
    // Phase 1: claim the region's free frames so destination allocations
    // cannot land inside the region we are trying to liberate.
    let claimed = claim_free_in_region(pm, base);

    // Phase 2: migrate movable allocated frames out.
    let mut moved: Vec<Pfn> = Vec::new();
    let mut aborted = false;
    for i in 0..BASE_PAGES_PER_HUGE {
        let src = Pfn(base.0 + i);
        if claimed.contains(&src) || pm.frame(src).is_free() {
            continue;
        }
        if !pm.frame(src).is_movable() {
            aborted = true;
            break;
        }
        if *budget == 0 {
            // Earlier migrations may have moved extra frames *into* this
            // region, exceeding the scan-time estimate.
            aborted = true;
            break;
        }
        let Ok(dst) = pm.alloc(Order(0), AllocPref::NonZeroed) else {
            aborted = true;
            break;
        };
        let (content, owner, kind) = {
            let f = pm.frame(src);
            (f.content(), f.owner(), f.kind())
        };
        if !migrate(src, dst.pfn, owner) {
            pm.free(dst.pfn, Order(0));
            aborted = true;
            break;
        }
        // Copy page identity to the destination frame.
        {
            let d = pm.frame_mut(dst.pfn);
            d.set_content(content);
            d.set_owner(owner);
            d.set_kind(kind);
            d.set_movable(true);
        }
        moved.push(src);
        stats.migrated_pages += 1;
        *budget -= 1;
    }

    if aborted {
        // Partial progress: release what we touched piecemeal.
        for src in moved {
            // Migrated data now lives at the destination; the source
            // frame's stale contents must not look pre-zeroed.
            pm.frame_mut(src).set_content(crate::content::PageContent::non_zero(0));
            pm.frame_mut(src).set_owner(None);
            pm.free(src, Order(0));
        }
        for pfn in claimed {
            pm.free(pfn, Order(0));
        }
        return false;
    }
    // Phase 3 (success): every frame in the region is now kernel-held
    // (claimed or migrated-out source); free the region as one huge block
    // so it enters the free lists whole regardless of mixed zero-ness.
    for src in moved {
        pm.frame_mut(src).set_content(crate::content::PageContent::non_zero(0));
        pm.frame_mut(src).set_owner(None);
    }
    pm.free(base, HUGE_ORDER);
    true
}

/// Removes every free frame of the region from the free lists and marks it
/// kernel-claimed (allocated, unmovable). Returns the claimed frames.
fn claim_free_in_region(pm: &mut PhysMemory, base: Pfn) -> Vec<Pfn> {
    let mut claimed = Vec::new();
    let region_end = base.0 + BASE_PAGES_PER_HUGE;
    let mut i = base.0;
    while i < region_end {
        let pfn = Pfn(i);
        if !pm.frame(pfn).is_free() {
            i += 1;
            continue;
        }
        // Find the head/order of the free block containing `pfn`.
        let (head, order) = find_free_block(pm, pfn).expect("free frame must be in a block");
        let listz = pm.block_is_zeroed(head, order) as usize;
        pm.claim_remove(head, order, listz);
        // Re-insert any part of the block outside the region (an order-10
        // block spans two huge regions).
        let block_end = head.0 + order.pages();
        for p in head.0..block_end {
            if p >= base.0 && p < region_end {
                pm.claim_mark(Pfn(p));
                claimed.push(Pfn(p));
            }
        }
        // Outside portions (before/after the region) go back to the lists
        // as order-0 frames; merging restores larger blocks.
        for p in head.0..block_end {
            if p < base.0 || p >= region_end {
                pm.claim_reinsert(Pfn(p));
            }
        }
        i = block_end.max(i + 1);
    }
    claimed
}

fn find_free_block(pm: &PhysMemory, pfn: Pfn) -> Option<(Pfn, Order)> {
    for o in 0..=crate::types::MAX_ORDER.0 {
        let order = Order(o);
        let head = pfn.block_base(order);
        let f = pm.frame(head);
        if f.state == FrameState::FreeHead && f.free_order == o {
            return Some((head, order));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buddy::AllocPref;
    use crate::content::PageContent;
    use crate::frame::{FrameKind, OwnerTag};

    /// Builds memory where every huge region has a few scattered movable
    /// allocations, so no free huge block exists.
    fn fragmented_memory(frames: u64) -> (PhysMemory, Vec<Pfn>) {
        let mut pm = PhysMemory::new(frames);
        let mut all = Vec::new();
        while let Ok(a) = pm.alloc(Order(0), AllocPref::Zeroed) {
            all.push(a.pfn);
        }
        let mut kept = Vec::new();
        for pfn in all {
            // Keep one page out of every 64 allocated; free the rest.
            if pfn.0 % 64 == 0 {
                let f = pm.frame_mut(pfn);
                f.set_owner(Some(OwnerTag { pid: 1, vpn: pfn.0 }));
                f.set_content(PageContent::non_zero(3));
                kept.push(pfn);
            } else {
                pm.free(pfn, Order(0));
            }
        }
        (pm, kept)
    }

    #[test]
    fn compaction_creates_huge_blocks() {
        let (mut pm, kept) = fragmented_memory(4096);
        assert!(pm.largest_free_order().unwrap() < HUGE_ORDER, "setup: fragmented");
        let mut remaps = Vec::new();
        let stats = compact(&mut pm, u64::MAX, |src, dst, _owner| {
            remaps.push((src, dst));
            true
        });
        assert!(stats.huge_blocks_freed > 0, "no huge blocks created: {stats:?}");
        assert_eq!(stats.migrated_pages as usize, remaps.len());
        assert!(pm.largest_free_order().unwrap() >= HUGE_ORDER);
        pm.check_invariants();
        // Every kept page still exists somewhere with its content intact
        // (either unmigrated or at its migration destination).
        let mut live = 0;
        for pfn in 0..pm.total_frames() {
            let f = pm.frame(Pfn(pfn));
            if !f.is_free() && f.owner().map(|o| o.pid) == Some(1) {
                assert_eq!(f.content(), PageContent::non_zero(3));
                live += 1;
            }
        }
        assert_eq!(live, kept.len());
    }

    #[test]
    fn budget_limits_migrations() {
        let (mut pm, _) = fragmented_memory(4096);
        let stats = compact(&mut pm, 5, |_, _, _| true);
        assert!(stats.migrated_pages <= 5, "{stats:?}");
        pm.check_invariants();
    }

    #[test]
    fn unmovable_regions_are_skipped() {
        let mut pm = PhysMemory::new(2048);
        // Pin one page in every region.
        let mut pins = Vec::new();
        for _ in 0..4 {
            let a = pm.alloc(Order(0), AllocPref::Zeroed).unwrap();
            pm.frame_mut(a.pfn).set_kind(FrameKind::Pinned);
            pins.push(a.pfn);
        }
        // (allocator serves them from the same region, so spread manually:
        // allocate big chunks to force later regions)
        let stats = compact(&mut pm, u64::MAX, |_, _, _| true);
        assert_eq!(stats.migrated_pages, 0, "nothing movable to migrate");
        pm.check_invariants();
    }

    #[test]
    fn veto_aborts_region_but_preserves_memory() {
        let (mut pm, kept) = fragmented_memory(2048);
        let before = pm.allocated_pages();
        let stats = compact(&mut pm, u64::MAX, |_, _, _| false);
        assert_eq!(stats.migrated_pages, 0);
        assert_eq!(stats.huge_blocks_freed, 0);
        assert_eq!(pm.allocated_pages(), before);
        pm.check_invariants();
        let _ = kept;
    }

    #[test]
    fn migration_updates_callback_with_valid_frames() {
        let (mut pm, _) = fragmented_memory(2048);
        compact(&mut pm, u64::MAX, |src, dst, _owner| {
            assert_ne!(src, dst);
            assert_ne!(src.block_base(HUGE_ORDER), dst.block_base(HUGE_ORDER),
                "destination must be outside the source region");
            true
        });
        pm.check_invariants();
    }
}
