//! Physical-memory substrate of the HawkEye simulator.
//!
//! This crate models everything the paper's algorithms need from the machine
//! and from Linux's physical-memory layer:
//!
//! * [`types`] — page-frame numbers, orders, and the 4 KB / 2 MB geometry.
//! * [`content`] — a per-page *content model*: each base page is either
//!   zero-filled or has a first-non-zero-byte offset, which lets HawkEye's
//!   bloat-recovery scan (§3.2) charge realistic costs (≈10 bytes scanned
//!   per in-use page, 4096 per bloat page — Fig. 3).
//! * [`frame`] — per-frame metadata (kind, owner reverse-map, content).
//! * [`buddy`] — a Linux-style binary buddy allocator whose free lists are
//!   split into **zero** and **non-zero** lists exactly as HawkEye's async
//!   pre-zeroing design requires (§3.1).
//! * [`fmfi`] — Gorman's Free Memory Fragmentation Index, the signal
//!   Ingens uses to switch between aggressive and conservative promotion.
//! * [`compact`] — memory compaction (migrating movable frames to create
//!   contiguous huge-page-sized blocks), the khugepaged substrate.
//!
//! # Examples
//!
//! ```
//! use hawkeye_mem::{PhysMemory, AllocPref, HUGE_ORDER};
//!
//! // 64 MiB of simulated physical memory, all pre-zeroed at "boot".
//! let mut pm = PhysMemory::new(16 * 1024);
//! let huge = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
//! assert!(huge.was_zeroed);
//! assert_eq!(pm.allocated_pages(), 512);
//! ```

pub mod buddy;
pub mod compact;
pub mod content;
pub mod error;
pub mod fmfi;
pub mod frame;
pub mod rng;
pub mod shard;
pub mod types;

pub use buddy::{AllocPref, Allocation, PhysMemory};
pub use compact::CompactionStats;
pub use content::PageContent;
pub use error::AllocError;
pub use frame::{Frame, FrameKind, OwnerTag};
pub use shard::{ShardAlloc, ShardedBuddy};
pub use types::{
    Order, Pfn, BASE_PAGES_PER_HUGE, BASE_PAGE_SHIFT, BASE_PAGE_SIZE, HUGE_ORDER, HUGE_PAGE_SIZE,
    MAX_ORDER,
};
