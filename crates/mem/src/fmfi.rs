//! Free Memory Fragmentation Index (FMFI).
//!
//! Gorman & Whitcroft's index (citation \[50\] in the paper): for a requested order
//! `j`, how fragmented is free memory with respect to that request?
//!
//! ```text
//! FMFI(j) = (TotalFreePages - sum_{i >= j} 2^i * k_i) / TotalFreePages
//! ```
//!
//! where `k_i` is the number of free blocks of order `i`. The index is 0
//! when all free memory is already in blocks large enough for the request
//! and approaches 1 when free memory exists only as smaller fragments.
//!
//! Ingens uses FMFI at the huge-page order with a 0.5 threshold to switch
//! between its aggressive and conservative promotion modes (§2.1).

use crate::buddy::PhysMemory;
use crate::types::Order;

/// Computes the FMFI of `pm` for allocations of `order`.
///
/// Returns 0.0 when there is no free memory at all (nothing is fragmented —
/// the system is simply full; callers normally also check free levels).
///
/// # Examples
///
/// ```
/// use hawkeye_mem::{PhysMemory, fmfi::fmfi, HUGE_ORDER};
///
/// let pm = PhysMemory::new(2048);
/// assert_eq!(fmfi(&pm, HUGE_ORDER), 0.0); // pristine memory: no fragmentation
/// ```
pub fn fmfi(pm: &PhysMemory, order: Order) -> f64 {
    let total_free = pm.free_pages();
    if total_free == 0 {
        return 0.0;
    }
    let hist = pm.free_block_histogram();
    let satisfying: u64 = hist
        .iter()
        .enumerate()
        .skip(order.index())
        .map(|(i, k)| k * (1u64 << i))
        .sum();
    // `satisfying` can momentarily exceed `total_free` only if the two
    // counters disagree (they are maintained independently); saturate and
    // clamp so the index is always a finite value in [0, 1].
    let fragmented = total_free.saturating_sub(satisfying);
    (fragmented as f64 / total_free as f64).clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buddy::AllocPref;
    use crate::types::{Pfn, HUGE_ORDER, MAX_ORDER};

    #[test]
    fn pristine_memory_is_unfragmented() {
        let pm = PhysMemory::new(4096);
        assert_eq!(fmfi(&pm, HUGE_ORDER), 0.0);
        assert_eq!(fmfi(&pm, Order(0)), 0.0);
    }

    #[test]
    fn order_zero_requests_never_fragmented() {
        // Any free page satisfies an order-0 request.
        let mut pm = PhysMemory::new(2048);
        let _holes: Vec<_> = (0..64).map(|_| pm.alloc(Order(0), AllocPref::Zeroed).unwrap()).collect();
        assert_eq!(fmfi(&pm, Order(0)), 0.0);
    }

    #[test]
    fn scattered_pins_raise_huge_order_fmfi() {
        let mut pm = PhysMemory::new(4096);
        // Allocate everything as base pages, then free every other page:
        // free memory is plentiful but has no huge blocks at all.
        let mut pages = Vec::new();
        while let Ok(a) = pm.alloc(Order(0), AllocPref::Zeroed) {
            pages.push(a.pfn);
        }
        for pfn in pages.iter().filter(|p| p.0 % 2 == 0) {
            pm.free(*pfn, Order(0));
        }
        let f = fmfi(&pm, HUGE_ORDER);
        assert_eq!(f, 1.0, "only order-0 fragments remain: fully fragmented");
        // ... and recovers when the other half is freed (buddies merge).
        for pfn in pages.iter().filter(|p| p.0 % 2 == 1) {
            pm.free(*pfn, Order(0));
        }
        assert_eq!(fmfi(&pm, HUGE_ORDER), 0.0);
        assert_eq!(pm.largest_free_order(), Some(MAX_ORDER));
    }

    #[test]
    fn fmfi_is_monotone_in_order() {
        let mut pm = PhysMemory::new(4096);
        // Create a mixed state: some huge blocks gone, some small holes.
        let _h = pm.alloc(HUGE_ORDER, AllocPref::Zeroed).unwrap();
        let keep: Vec<_> = (0..100).map(|_| pm.alloc(Order(0), AllocPref::Zeroed).unwrap()).collect();
        for (i, a) in keep.iter().enumerate() {
            if i % 2 == 0 {
                pm.free(a.pfn, Order(0));
            }
        }
        let f_low = fmfi(&pm, Order(3));
        let f_high = fmfi(&pm, HUGE_ORDER);
        assert!(f_high >= f_low, "harder requests are at least as fragmented");
        assert!((0.0..=1.0).contains(&f_high));
    }

    #[test]
    fn full_memory_reports_zero() {
        let mut pm = PhysMemory::new(1024);
        let _a = pm.alloc(MAX_ORDER, AllocPref::Zeroed).unwrap();
        assert_eq!(pm.free_pages(), 0);
        assert_eq!(fmfi(&pm, HUGE_ORDER), 0.0);
    }

    #[test]
    fn empty_free_list_is_zero_not_nan() {
        // Regression: FMFI is defined as 0.0 (not 0/0 = NaN) when the buddy
        // has no free pages at all, under either merge policy.
        for cross_merge in [false, true] {
            let mut pm = PhysMemory::with_cross_merge(1024, cross_merge);
            while pm.alloc(Order(0), AllocPref::Zeroed).is_ok() {}
            assert_eq!(pm.free_pages(), 0);
            for order in [Order(0), Order(3), HUGE_ORDER, MAX_ORDER] {
                let f = fmfi(&pm, order);
                assert!(!f.is_nan(), "FMFI must never be NaN");
                assert_eq!(f, 0.0, "empty buddy (cross_merge={cross_merge})");
            }
        }
    }

    #[test]
    fn fmfi_is_always_finite_and_bounded() {
        let mut pm = PhysMemory::new(2048);
        let pages: Vec<Pfn> =
            (0..512).map(|_| pm.alloc(Order(0), AllocPref::Zeroed).unwrap().pfn).collect();
        for pfn in pages.iter().filter(|p| p.0 % 3 == 0) {
            pm.free(*pfn, Order(0));
        }
        for o in 0..=MAX_ORDER.0 {
            let f = fmfi(&pm, Order(o));
            assert!(f.is_finite() && (0.0..=1.0).contains(&f), "order {o}: {f}");
        }
    }

    #[test]
    fn partial_fragmentation_between_zero_and_one() {
        let mut pm = PhysMemory::new(4096);
        // Take all order-0 pages from one max block region by alloc order 0
        // 1024 times (pins 1024 pages), leaving 3 pristine max blocks.
        let pages: Vec<Pfn> =
            (0..1024).map(|_| pm.alloc(Order(0), AllocPref::Zeroed).unwrap().pfn).collect();
        // Free every other page in that region only.
        for pfn in pages.iter().filter(|p| p.0 % 2 == 0) {
            pm.free(*pfn, Order(0));
        }
        let f = fmfi(&pm, HUGE_ORDER);
        // 3072 pages free in huge blocks, 512 free as fragments.
        let expected = 512.0 / 3584.0;
        assert!((f - expected).abs() < 1e-9, "got {f}, expected {expected}");
    }
}
