//! Per-page content model.
//!
//! HawkEye's bloat recovery (§3.2) scans base pages for zero content,
//! stopping at the first non-zero byte. The paper measures (Fig. 3) that
//! across 56 workloads the *average distance to the first non-zero byte in
//! an in-use page is only 9.11 bytes*, which makes the scan cost
//! proportional to the number of *bloat* pages rather than to total RSS.
//!
//! Rather than storing 4 KB of bytes per simulated page, we model exactly
//! the property the algorithm depends on: whether the page is all-zero and,
//! if not, the offset of its first non-zero byte.

use crate::types::BASE_PAGE_SIZE;
use std::fmt;

/// Content summary of one 4 KB base page.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::PageContent;
///
/// let bloat = PageContent::Zero;
/// let inuse = PageContent::non_zero(8);
/// assert_eq!(bloat.scan_bytes(), 4096); // must scan the whole page
/// assert_eq!(inuse.scan_bytes(), 9);    // stops at first non-zero byte
/// assert!(bloat.is_zero() && !inuse.is_zero());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum PageContent {
    /// Every byte of the page is zero (a candidate for de-duplication
    /// against the canonical zero page).
    #[default]
    Zero,
    /// The page has data; `first_nonzero` is the byte offset (0-4095) of
    /// the first non-zero byte a sequential scan would hit.
    NonZero {
        /// Offset of the first non-zero byte.
        first_nonzero: u16,
    },
}

impl PageContent {
    /// Compact sentinel encoding: `u16::MAX` means zero-filled, anything
    /// else is the first-non-zero offset. Used by the frame table to store
    /// one `u16` per frame.
    pub(crate) const ZERO_TAG: u16 = u16::MAX;

    /// Creates non-zero content with the given first-non-zero offset.
    ///
    /// # Panics
    ///
    /// Panics if `first_nonzero >= 4096`.
    pub fn non_zero(first_nonzero: u16) -> Self {
        assert!(
            (first_nonzero as u64) < BASE_PAGE_SIZE,
            "first_nonzero offset {first_nonzero} out of page bounds"
        );
        PageContent::NonZero { first_nonzero }
    }

    /// Whether the page is entirely zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        matches!(self, PageContent::Zero)
    }

    /// Number of bytes a zero-scan reads before deciding: the full page for
    /// zero pages, `first_nonzero + 1` otherwise.
    #[inline]
    pub fn scan_bytes(self) -> u64 {
        match self {
            PageContent::Zero => BASE_PAGE_SIZE,
            PageContent::NonZero { first_nonzero } => first_nonzero as u64 + 1,
        }
    }

    pub(crate) fn to_tag(self) -> u16 {
        match self {
            PageContent::Zero => Self::ZERO_TAG,
            PageContent::NonZero { first_nonzero } => first_nonzero,
        }
    }

    pub(crate) fn from_tag(tag: u16) -> Self {
        if tag == Self::ZERO_TAG {
            PageContent::Zero
        } else {
            PageContent::NonZero { first_nonzero: tag }
        }
    }
}

impl fmt::Display for PageContent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PageContent::Zero => write!(f, "zero"),
            PageContent::NonZero { first_nonzero } => write!(f, "data@{first_nonzero}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_matches_paper_model() {
        // A bloat page costs a full-page scan.
        assert_eq!(PageContent::Zero.scan_bytes(), 4096);
        // The paper's measured average in-use page costs ~10 bytes.
        assert_eq!(PageContent::non_zero(9).scan_bytes(), 10);
        assert_eq!(PageContent::non_zero(0).scan_bytes(), 1);
        assert_eq!(PageContent::non_zero(4095).scan_bytes(), 4096);
    }

    #[test]
    fn tag_encoding_round_trips() {
        for c in [PageContent::Zero, PageContent::non_zero(0), PageContent::non_zero(4095)] {
            assert_eq!(PageContent::from_tag(c.to_tag()), c);
        }
    }

    #[test]
    #[should_panic(expected = "out of page bounds")]
    fn rejects_out_of_bounds_offset() {
        let _ = PageContent::non_zero(4096);
    }

    #[test]
    fn default_is_zero() {
        assert!(PageContent::default().is_zero());
    }
}
