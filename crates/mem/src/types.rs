//! Page geometry and identifier newtypes.
//!
//! The simulator uses the x86-64 geometry the paper evaluates on: 4 KB base
//! pages and 2 MB huge pages (order 9), with buddy orders up to
//! [`MAX_ORDER`] = 10 as in Linux's default `MAX_ORDER - 1`.

use std::fmt;

/// log2 of the base page size (4 KB).
pub const BASE_PAGE_SHIFT: u32 = 12;
/// Base page size in bytes (4 KB).
pub const BASE_PAGE_SIZE: u64 = 1 << BASE_PAGE_SHIFT;
/// Buddy order of a huge page (2 MB = 512 base pages).
pub const HUGE_ORDER: Order = Order(9);
/// Number of base pages per huge page (512).
pub const BASE_PAGES_PER_HUGE: u64 = 1 << HUGE_ORDER.0;
/// Huge page size in bytes (2 MB).
pub const HUGE_PAGE_SIZE: u64 = BASE_PAGE_SIZE * BASE_PAGES_PER_HUGE;
/// Largest buddy order tracked by the allocator (4 MB blocks).
pub const MAX_ORDER: Order = Order(10);

/// A page frame number: the index of a 4 KB physical frame.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::{Pfn, HUGE_ORDER};
///
/// let pfn = Pfn(1536);
/// assert!(pfn.is_aligned(HUGE_ORDER));
/// assert_eq!(pfn.buddy(HUGE_ORDER), Pfn(1024));
/// assert_eq!(pfn.block_base(HUGE_ORDER), Pfn(1536));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Pfn(pub u64);

impl Pfn {
    /// Frame index as `usize` (for table indexing).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Physical byte address of the frame.
    #[inline]
    pub fn addr(self) -> u64 {
        self.0 << BASE_PAGE_SHIFT
    }

    /// Whether this frame is aligned to a block of the given order.
    #[inline]
    pub fn is_aligned(self, order: Order) -> bool {
        self.0 & ((1u64 << order.0) - 1) == 0
    }

    /// The buddy block of the `order`-sized block starting at `self`.
    ///
    /// # Panics
    ///
    /// Panics in debug builds if `self` is not aligned to `order`.
    #[inline]
    pub fn buddy(self, order: Order) -> Pfn {
        debug_assert!(self.is_aligned(order));
        Pfn(self.0 ^ (1u64 << order.0))
    }

    /// The base (aligned-down) frame of the `order` block containing `self`.
    #[inline]
    pub fn block_base(self, order: Order) -> Pfn {
        Pfn(self.0 & !((1u64 << order.0) - 1))
    }

    /// Offset of this frame within its `order` block.
    #[inline]
    pub fn block_offset(self, order: Order) -> u64 {
        self.0 & ((1u64 << order.0) - 1)
    }
}

impl fmt::Display for Pfn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pfn:{:#x}", self.0)
    }
}

impl From<u64> for Pfn {
    fn from(v: u64) -> Self {
        Pfn(v)
    }
}

/// A buddy order: a block of `2^order` contiguous base pages.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::{Order, HUGE_ORDER};
///
/// assert_eq!(HUGE_ORDER.pages(), 512);
/// assert_eq!(Order(0).pages(), 1);
/// assert_eq!(HUGE_ORDER.bytes(), 2 * 1024 * 1024);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Order(pub u8);

impl Order {
    /// Number of base pages in a block of this order.
    #[inline]
    pub fn pages(self) -> u64 {
        1u64 << self.0
    }

    /// Size in bytes of a block of this order.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.pages() * BASE_PAGE_SIZE
    }

    /// Order value as `usize` (for list indexing).
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The next larger order, if any (bounded by [`MAX_ORDER`]).
    #[inline]
    pub fn parent(self) -> Option<Order> {
        if self.0 < MAX_ORDER.0 {
            Some(Order(self.0 + 1))
        } else {
            None
        }
    }
}

impl fmt::Display for Order {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "order-{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geometry_constants() {
        assert_eq!(BASE_PAGE_SIZE, 4096);
        assert_eq!(HUGE_PAGE_SIZE, 2 * 1024 * 1024);
        assert_eq!(BASE_PAGES_PER_HUGE, 512);
        assert_eq!(HUGE_ORDER.pages(), BASE_PAGES_PER_HUGE);
    }

    #[test]
    fn pfn_alignment_and_buddies() {
        assert!(Pfn(0).is_aligned(MAX_ORDER));
        assert!(Pfn(512).is_aligned(HUGE_ORDER));
        assert!(!Pfn(511).is_aligned(Order(1)));
        assert_eq!(Pfn(0).buddy(HUGE_ORDER), Pfn(512));
        assert_eq!(Pfn(512).buddy(HUGE_ORDER), Pfn(0));
        assert_eq!(Pfn(1025).block_base(HUGE_ORDER), Pfn(1024));
        assert_eq!(Pfn(1025).block_offset(HUGE_ORDER), 1);
    }

    #[test]
    fn order_parent_chain_is_bounded() {
        let mut o = Order(0);
        let mut steps = 0;
        while let Some(p) = o.parent() {
            o = p;
            steps += 1;
        }
        assert_eq!(o, MAX_ORDER);
        assert_eq!(steps, MAX_ORDER.0 as usize);
    }

    #[test]
    fn pfn_addr() {
        assert_eq!(Pfn(1).addr(), 4096);
        assert_eq!(Pfn(512).addr(), HUGE_PAGE_SIZE);
    }
}
