//! A tiny deterministic PRNG (SplitMix64) shared by the whole workspace.
//!
//! The workspace has no external dependencies so tier-1 verification runs
//! offline; workload generators and randomized tests use this generator
//! instead of `rand`. SplitMix64 is more than adequate for
//! fragmentation-antagonist shuffles and uniform access sampling, and is
//! perfectly reproducible across platforms.

/// SplitMix64 PRNG.
///
/// # Examples
///
/// ```
/// use hawkeye_mem::rng::SplitMix64;
///
/// let mut a = SplitMix64::new(42);
/// let mut b = SplitMix64::new(42);
/// assert_eq!(a.next_u64(), b.next_u64()); // deterministic
/// ```
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound` is 0.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        // Multiply-shift bounded rejection-free mapping (slight bias is
        // irrelevant at simulator scales).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_nontrivial() {
        let mut r = SplitMix64::new(1);
        let xs: Vec<u64> = (0..4).map(|_| r.next_u64()).collect();
        let mut r2 = SplitMix64::new(1);
        let ys: Vec<u64> = (0..4).map(|_| r2.next_u64()).collect();
        assert_eq!(xs, ys);
        assert!(xs.windows(2).any(|w| w[0] != w[1]));
    }

    #[test]
    fn below_stays_in_range() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
        }
        // roughly uniform: all residues appear
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[r.below(10) as usize] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    fn unit_in_zero_one() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMix64::new(3);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert_ne!(xs, sorted, "shuffle should move things");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn below_zero_panics() {
        SplitMix64::new(0).below(0);
    }
}
