//! Per-node sharded buddy allocator with work-stealing refill.
//!
//! Multi-core machines contend on the physical allocator. This module
//! splits physical memory into per-node **arenas** — each shard owns a
//! contiguous PFN range with its own [`PhysMemory`] buddy state behind
//! its own lock — so allocations from different cores proceed in
//! parallel. A core allocates from its *home* shard; when the home arena
//! cannot satisfy the request the caller **steals** from the other
//! shards in deterministic ring order (home+1, home+2, … mod n), which
//! keeps steal traffic reproducible for the seeded contention replay
//! while still modelling the cross-node refill path.
//!
//! Global PFNs are `shard × shard_frames + local`, so routing a `free`
//! back to its owning arena is a single division and blocks never span
//! arenas.
//!
//! Lock acquisition comes in two flavours: [`ShardedBuddy::alloc_on`]
//! blocks, while [`ShardedBuddy::alloc_contended`] first tries the lock
//! and reports whether it had to wait — the multi-core replay uses the
//! latter to count genuine lock contention without timing assertions.
//!
//! # Examples
//!
//! ```
//! use hawkeye_mem::shard::ShardedBuddy;
//! use hawkeye_mem::{AllocPref, Order};
//!
//! let sb = ShardedBuddy::new(8192, 4);
//! let a = sb.alloc_on(1, Order(0), AllocPref::Zeroed).unwrap();
//! assert_eq!(sb.owner_of(a.pfn), 1, "home shard served it");
//! sb.free(a.pfn, Order(0));
//! assert_eq!(sb.free_pages(), 8192);
//! ```

use std::sync::Mutex;

use crate::buddy::{AllocPref, PhysMemory};
use crate::error::AllocError;
use crate::types::{Order, Pfn, MAX_ORDER};

/// A successful sharded allocation (global PFN).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardAlloc {
    /// First frame of the block, in *global* PFN space.
    pub pfn: Pfn,
    /// Block order.
    pub order: Order,
    /// Whether the block came back pre-zeroed.
    pub was_zeroed: bool,
    /// Arena that served the request.
    pub shard: usize,
    /// True when the home arena was exhausted and the block was stolen
    /// from another shard.
    pub stolen: bool,
}

/// Physical memory split into per-node buddy arenas. See module docs.
#[derive(Debug)]
pub struct ShardedBuddy {
    arenas: Vec<Mutex<PhysMemory>>,
    shard_frames: u64,
}

/// Poison-tolerant lock: allocator state is plain-old-data and every
/// mutation is a complete buddy operation, so a panicked holder leaves a
/// consistent arena.
fn lock_arena(m: &Mutex<PhysMemory>) -> std::sync::MutexGuard<'_, PhysMemory> {
    match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

impl ShardedBuddy {
    /// Splits `total_frames` into `shards` arenas. The per-shard size is
    /// rounded down to a whole max-order block (so buddy merging inside
    /// an arena is unconstrained); at least one max-order block per
    /// shard.
    ///
    /// # Panics
    ///
    /// Panics if `shards == 0`.
    pub fn new(total_frames: u64, shards: usize) -> Self {
        assert!(shards > 0, "need at least one shard");
        let block = 1u64 << MAX_ORDER.0;
        let shard_frames = ((total_frames / shards as u64) / block * block).max(block);
        let arenas = (0..shards).map(|_| Mutex::new(PhysMemory::new(shard_frames))).collect();
        ShardedBuddy { arenas, shard_frames }
    }

    /// Number of arenas.
    pub fn shards(&self) -> usize {
        self.arenas.len()
    }

    /// Frames owned by each arena.
    pub fn shard_frames(&self) -> u64 {
        self.shard_frames
    }

    /// The arena owning a global PFN.
    pub fn owner_of(&self, pfn: Pfn) -> usize {
        ((pfn.0 / self.shard_frames) as usize).min(self.arenas.len() - 1)
    }

    fn to_global(&self, shard: usize, local: Pfn) -> Pfn {
        Pfn(shard as u64 * self.shard_frames + local.0)
    }

    fn to_local(&self, pfn: Pfn) -> (usize, Pfn) {
        let shard = self.owner_of(pfn);
        (shard, Pfn(pfn.0 - shard as u64 * self.shard_frames))
    }

    /// Allocates from the home arena, stealing in ring order on
    /// exhaustion. Blocks on the arena locks.
    pub fn alloc_on(
        &self,
        home: usize,
        order: Order,
        pref: AllocPref,
    ) -> Result<ShardAlloc, AllocError> {
        self.alloc_inner(home, order, pref, &mut 0)
    }

    /// Like [`Self::alloc_on`], but counts lock contention into
    /// `lock_waits`: each arena lock that could not be taken immediately
    /// (another core held it) adds one before blocking.
    pub fn alloc_contended(
        &self,
        home: usize,
        order: Order,
        pref: AllocPref,
        lock_waits: &mut u64,
    ) -> Result<ShardAlloc, AllocError> {
        self.alloc_inner(home, order, pref, lock_waits)
    }

    fn alloc_inner(
        &self,
        home: usize,
        order: Order,
        pref: AllocPref,
        lock_waits: &mut u64,
    ) -> Result<ShardAlloc, AllocError> {
        let n = self.arenas.len();
        let home = home % n;
        let mut last_err = AllocError::OutOfMemory { order };
        for hop in 0..n {
            let shard = (home + hop) % n;
            let mut arena = match self.arenas[shard].try_lock() {
                Ok(g) => g,
                Err(std::sync::TryLockError::WouldBlock) => {
                    *lock_waits += 1;
                    lock_arena(&self.arenas[shard])
                }
                Err(std::sync::TryLockError::Poisoned(p)) => p.into_inner(),
            };
            match arena.alloc(order, pref) {
                Ok(a) => {
                    return Ok(ShardAlloc {
                        pfn: self.to_global(shard, a.pfn),
                        order: a.order,
                        was_zeroed: a.was_zeroed,
                        shard,
                        stolen: hop != 0,
                    });
                }
                Err(e) => last_err = e,
            }
        }
        Err(last_err)
    }

    /// Frees a block back to its owning arena.
    pub fn free(&self, pfn: Pfn, order: Order) {
        let (shard, local) = self.to_local(pfn);
        lock_arena(&self.arenas[shard]).free(local, order);
    }

    /// One pre-zeroing step against a single arena (the pre-zero daemon
    /// walks arenas round-robin). Returns pages zeroed.
    pub fn prezero_step_on(&self, shard: usize, max_pages: u64) -> u64 {
        let shard = shard % self.arenas.len();
        lock_arena(&self.arenas[shard]).prezero_step(max_pages)
    }

    /// Free pages across every arena.
    pub fn free_pages(&self) -> u64 {
        self.arenas.iter().map(|a| lock_arena(a).free_pages()).sum()
    }

    /// Pre-zeroed free pages across every arena.
    pub fn zeroed_free_pages(&self) -> u64 {
        self.arenas.iter().map(|a| lock_arena(a).zeroed_free_pages()).sum()
    }

    /// Runs `f` against one arena's buddy state under its lock (the PFNs
    /// `f` sees are arena-local). Test and replay support for operations
    /// the sharded façade doesn't expose, e.g. dirtying frame contents.
    pub fn with_arena<R>(&self, shard: usize, f: impl FnOnce(&mut PhysMemory) -> R) -> R {
        f(&mut lock_arena(&self.arenas[shard % self.arenas.len()]))
    }

    /// Runs every arena's buddy invariant check (test support).
    pub fn check_invariants(&self) {
        for a in &self.arenas {
            lock_arena(a).check_invariants();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::HUGE_ORDER;

    #[test]
    fn shard_sizing_rounds_to_max_order_blocks() {
        let sb = ShardedBuddy::new(10_000, 4);
        assert_eq!(sb.shards(), 4);
        let block = 1u64 << MAX_ORDER.0;
        assert_eq!(sb.shard_frames() % block, 0);
        assert!(sb.shard_frames() >= block);
        // Tiny totals still get one block per shard.
        assert_eq!(ShardedBuddy::new(10, 2).shard_frames(), block);
    }

    #[test]
    fn home_shard_serves_until_exhausted_then_steals_in_ring_order() {
        let sb = ShardedBuddy::new(4 * 1024, 4); // one max-order block per shard
        // Drain shard 2 completely with max-order blocks.
        let a = sb.alloc_on(2, MAX_ORDER, AllocPref::Zeroed).expect("home block");
        assert_eq!((a.shard, a.stolen), (2, false));
        // Home empty: the next request must steal from shard 3 (ring).
        let b = sb.alloc_on(2, MAX_ORDER, AllocPref::Zeroed).expect("stolen block");
        assert_eq!((b.shard, b.stolen), (3, true));
        // And the ring continues deterministically: 0, then 1.
        let c = sb.alloc_on(2, MAX_ORDER, AllocPref::Zeroed).expect("second steal");
        assert_eq!(c.shard, 0);
        let d = sb.alloc_on(2, MAX_ORDER, AllocPref::Zeroed).expect("third steal");
        assert_eq!(d.shard, 1);
        assert!(sb.alloc_on(2, MAX_ORDER, AllocPref::Zeroed).is_err(), "all arenas empty");
        sb.check_invariants();
    }

    #[test]
    fn global_pfns_route_frees_to_the_owning_arena() {
        let sb = ShardedBuddy::new(8 * 1024, 4);
        let mut blocks = Vec::new();
        for home in 0..4 {
            let a = sb.alloc_on(home, HUGE_ORDER, AllocPref::Zeroed).expect("huge");
            assert_eq!(sb.owner_of(a.pfn), home);
            blocks.push(a);
        }
        assert_eq!(sb.free_pages(), 8 * 1024 - 4 * 512);
        for a in blocks {
            sb.free(a.pfn, a.order);
        }
        assert_eq!(sb.free_pages(), 8 * 1024);
        sb.check_invariants();
    }

    #[test]
    fn prezero_step_grows_the_zero_pool_per_arena() {
        let sb = ShardedBuddy::new(4 * 1024, 2);
        // Dirty one frame so its free block lands on the non-zero list.
        let a = sb.alloc_on(0, Order(0), AllocPref::Zeroed).expect("frame");
        let (shard, local) = (a.shard, Pfn(a.pfn.0 % sb.shard_frames()));
        sb.with_arena(shard, |pm| {
            pm.frame_mut(local).set_content(crate::content::PageContent::non_zero(0));
        });
        sb.free(a.pfn, a.order);
        let before = sb.zeroed_free_pages();
        assert!(before < 4 * 1024, "one page is dirty");
        let z = sb.prezero_step_on(shard, 64);
        assert!(z > 0, "daemon zeroed something");
        assert!(sb.zeroed_free_pages() > before);
        sb.check_invariants();
    }

    #[test]
    fn contended_alloc_counts_lock_waits() {
        use std::sync::Arc;
        let sb = Arc::new(ShardedBuddy::new(8 * 1024, 2));
        // Uncontended: no waits recorded.
        let mut waits = 0;
        let a = sb.alloc_contended(0, Order(0), AllocPref::Zeroed, &mut waits).expect("frame");
        sb.free(a.pfn, a.order);
        assert_eq!(waits, 0);
        // Hammer one shard from several threads: totals stay exact even
        // though the interleaving (and the wait count) is host-dependent.
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let sb = sb.clone();
                std::thread::spawn(move || {
                    let mut waits = 0u64;
                    for _ in 0..500 {
                        let a = sb
                            .alloc_contended(0, Order(0), AllocPref::Zeroed, &mut waits)
                            .expect("frame");
                        sb.free(a.pfn, a.order);
                    }
                    waits
                })
            })
            .collect();
        for h in handles {
            let _ = h.join().expect("worker panicked");
        }
        assert_eq!(sb.free_pages(), 8 * 1024, "every stolen/contended frame came back");
        sb.check_invariants();
    }
}
