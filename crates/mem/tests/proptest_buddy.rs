//! Property-based tests for the buddy allocator and compactor.
//!
//! Random interleavings of alloc / dirty / free / pre-zero / compact must
//! preserve the allocator's structural invariants, never hand out
//! overlapping blocks, and conserve pages exactly.

// Requires the external `proptest` crate; see the crate's Cargo.toml for
// how to re-enable. Default builds must work offline.
#![cfg(feature = "proptest")]
use hawkeye_mem::{
    compact::compact, AllocPref, Order, PageContent, Pfn, PhysMemory, MAX_ORDER,
};
use proptest::prelude::*;

const FRAMES: u64 = 4096;

#[derive(Debug, Clone)]
enum Op {
    Alloc { order: u8, zeroed: bool },
    Free { slot: usize },
    Dirty { slot: usize, offset: u16 },
    Prezero { budget: u16 },
    Compact { budget: u16 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..=MAX_ORDER.0, any::<bool>()).prop_map(|(order, zeroed)| Op::Alloc { order, zeroed }),
        (any::<usize>()).prop_map(|slot| Op::Free { slot }),
        (any::<usize>(), 0u16..4096).prop_map(|(slot, offset)| Op::Dirty { slot, offset }),
        (0u16..2048).prop_map(|budget| Op::Prezero { budget }),
        (0u16..512).prop_map(|budget| Op::Compact { budget }),
    ]
}

fn overlaps(a: (u64, u64), b: (u64, u64)) -> bool {
    a.0 < b.1 && b.0 < a.1
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn random_ops_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let mut pm = PhysMemory::new(FRAMES);
        let mut live: Vec<(Pfn, Order)> = Vec::new();
        for op in ops {
            match op {
                Op::Alloc { order, zeroed } => {
                    let pref = if zeroed { AllocPref::Zeroed } else { AllocPref::NonZeroed };
                    if let Ok(a) = pm.alloc(Order(order), pref) {
                        // aligned & in-range
                        prop_assert!(a.pfn.is_aligned(a.order));
                        prop_assert!(a.pfn.0 + a.order.pages() <= FRAMES);
                        // zero promise honored
                        if a.was_zeroed {
                            prop_assert!(pm.block_is_zeroed(a.pfn, a.order));
                        }
                        // disjoint from every live allocation
                        let range = (a.pfn.0, a.pfn.0 + a.order.pages());
                        for (p, o) in &live {
                            prop_assert!(!overlaps(range, (p.0, p.0 + o.pages())),
                                "allocator returned overlapping block");
                        }
                        live.push((a.pfn, a.order));
                    }
                }
                Op::Free { slot } => {
                    if !live.is_empty() {
                        let (pfn, order) = live.swap_remove(slot % live.len());
                        pm.free(pfn, order);
                    }
                }
                Op::Dirty { slot, offset } => {
                    if !live.is_empty() {
                        let (pfn, order) = live[slot % live.len()];
                        // dirty a deterministic page of the block
                        let page = Pfn(pfn.0 + (offset as u64 % order.pages()));
                        pm.frame_mut(page).set_content(PageContent::non_zero(offset));
                    }
                }
                Op::Prezero { budget } => {
                    let z = pm.prezero_step(budget as u64);
                    prop_assert!(z <= budget as u64);
                }
                Op::Compact { budget } => {
                    // Compaction must not touch owned blocks: our live blocks
                    // have no owner and are movable, so vetoing them keeps
                    // them in place. Veto everything not ours as well.
                    let stats = compact(&mut pm, budget as u64, |_, _, _| false);
                    prop_assert_eq!(stats.migrated_pages, 0);
                }
            }
            // Page conservation.
            let live_pages: u64 = live.iter().map(|(_, o)| o.pages()).sum();
            prop_assert_eq!(pm.allocated_pages(), live_pages);
            prop_assert!(pm.zeroed_free_pages() <= pm.free_pages());
        }
        pm.check_invariants();
        // Freeing everything restores a fully-free system.
        for (pfn, order) in live.drain(..) {
            pm.free(pfn, order);
        }
        prop_assert_eq!(pm.free_pages(), FRAMES);
        pm.check_invariants();
    }

    #[test]
    fn prezero_converges_to_fully_zeroed(dirties in proptest::collection::vec((0u64..FRAMES, 0u16..4096), 0..64)) {
        let mut pm = PhysMemory::new(FRAMES);
        // Allocate everything, dirty random pages, free everything.
        let a = loop {
            match pm.alloc(MAX_ORDER, AllocPref::Zeroed) {
                Ok(a) => break a, // first block; grab the rest below
                Err(_) => unreachable!(),
            }
        };
        let mut blocks = vec![a];
        while let Ok(b) = pm.alloc(MAX_ORDER, AllocPref::Zeroed) {
            blocks.push(b);
        }
        for (pfn, off) in &dirties {
            pm.frame_mut(Pfn(*pfn)).set_content(PageContent::non_zero(*off));
        }
        for b in blocks {
            pm.free(b.pfn, b.order);
        }
        // Daemon with any positive budget eventually zeroes everything.
        let mut guard = 0;
        while pm.prezero_step(97) > 0 {
            guard += 1;
            prop_assert!(guard < 10_000, "pre-zeroing failed to converge");
        }
        prop_assert_eq!(pm.zeroed_free_pages(), FRAMES);
        // And the zero pool re-merges into max-order blocks.
        prop_assert_eq!(pm.zeroed_blocks(MAX_ORDER), FRAMES / MAX_ORDER.pages());
        pm.check_invariants();
    }

    #[test]
    fn compaction_with_permissive_migration_never_loses_pages(
        keep_mod in 3u64..64,
        budget in 0u64..4096,
    ) {
        let mut pm = PhysMemory::new(FRAMES);
        let mut live = Vec::new();
        while let Ok(a) = pm.alloc(Order(0), AllocPref::Zeroed) {
            live.push(a.pfn);
        }
        let mut kept = 0u64;
        for pfn in live {
            if pfn.0 % keep_mod == 0 {
                pm.frame_mut(pfn).set_content(PageContent::non_zero(7));
                kept += 1;
            } else {
                pm.free(pfn, Order(0));
            }
        }
        let before_alloc = pm.allocated_pages();
        prop_assert_eq!(before_alloc, kept);
        let stats = compact(&mut pm, budget, |_, _, _| true);
        prop_assert!(stats.migrated_pages <= budget);
        // Allocated page count is unchanged: migration moves, never drops.
        prop_assert_eq!(pm.allocated_pages(), kept);
        pm.check_invariants();
    }
}
