//! Ingens (Kwon et al., OSDI'16), as characterized in the paper's §1–§2.
//!
//! * Faults map **base pages only**; huge pages come from an asynchronous
//!   promotion thread (low fault latency, but more faults — Table 1).
//! * Promotion is **utilization-threshold** based: a region is eligible
//!   once `util_threshold` of its 512 pages are mapped. The adaptive
//!   variant watches the Free Memory Fragmentation Index: FMFI < 0.5 →
//!   aggressive (threshold 1, Linux-like), FMFI ≥ 0.5 → conservative
//!   (90 % by default). Bloat created in the aggressive phase is never
//!   recovered — the weakness Fig. 1 demonstrates.
//! * Fairness treats *memory contiguity as a resource*: processes are
//!   promoted round-robin proportionally to footprint, with **idle huge
//!   pages** (access-bit sampling) counted against a process's share via
//!   an idleness penalty factor.
//! * Recently-faulted regions are prioritized over older allocations.

use crate::util::TokenBucket;
use hawkeye_kernel::{FaultAction, HugePagePolicy, Machine, PromoteError};
use hawkeye_metrics::Cycles;
use hawkeye_vm::{Hvpn, Vpn};
use std::collections::{BTreeMap, VecDeque};

/// Tunables of the Ingens policy.
#[derive(Debug, Clone, Copy)]
pub struct IngensConfig {
    /// Conservative promotion threshold in mapped base pages (461 ≈ 90 %).
    pub util_threshold: u32,
    /// Adapt the threshold with FMFI (the paper's default Ingens); when
    /// false the configured threshold always applies (Ingens-90 % /
    /// Ingens-50 % variants of Table 7).
    pub adaptive: bool,
    /// FMFI above which promotion turns conservative.
    pub fmfi_threshold: f64,
    /// Promotions per simulated second.
    pub promotions_per_sec: f64,
    /// Compaction migration budget when contiguity runs out.
    pub compact_budget: u64,
    /// Weight of an idle huge page in the fairness share (1.0 = counts
    /// double).
    pub idle_penalty: f64,
    /// Access-bit sampling period for idleness estimation.
    pub sample_period: Cycles,
}

impl Default for IngensConfig {
    fn default() -> Self {
        IngensConfig {
            util_threshold: 461,
            adaptive: true,
            fmfi_threshold: 0.5,
            promotions_per_sec: 40.0,
            compact_budget: 4096,
            idle_penalty: 1.0,
            sample_period: Cycles::from_millis(200),
        }
    }
}

impl IngensConfig {
    /// The fixed-threshold variant the paper calls `Ingens-90%`.
    pub fn fixed_90() -> Self {
        IngensConfig { adaptive: false, util_threshold: 461, ..Default::default() }
    }

    /// The fixed-threshold variant the paper calls `Ingens-50%`.
    pub fn fixed_50() -> Self {
        IngensConfig { adaptive: false, util_threshold: 256, ..Default::default() }
    }
}

/// The Ingens policy.
///
/// # Examples
///
/// ```
/// use hawkeye_policies::{Ingens, IngensConfig};
/// use hawkeye_kernel::HugePagePolicy;
///
/// assert_eq!(Ingens::default().name(), "Ingens");
/// assert_eq!(Ingens::new(IngensConfig::fixed_90()).name(), "Ingens-90%");
/// ```
#[derive(Debug)]
pub struct Ingens {
    cfg: IngensConfig,
    name: String,
    budget: TokenBucket,
    /// Recently-faulted regions, most recent last (promotion priority).
    recent: VecDeque<(u32, Hvpn)>,
    /// Per-process sequential VA scan cursors.
    cursors: BTreeMap<u32, u64>,
    /// Idle huge pages per process from the last sampling pass.
    idle_huge: BTreeMap<u32, u64>,
    next_sample: Cycles,
}

const RECENT_CAP: usize = 8192;

impl Ingens {
    /// Creates the policy with explicit tunables.
    pub fn new(cfg: IngensConfig) -> Self {
        let name = if cfg.adaptive {
            "Ingens".to_string()
        } else {
            format!("Ingens-{}%", (cfg.util_threshold as f64 / 512.0 * 100.0).round())
        };
        Ingens {
            budget: TokenBucket::new(cfg.promotions_per_sec),
            cfg,
            name,
            recent: VecDeque::new(),
            cursors: BTreeMap::new(),
            idle_huge: BTreeMap::new(),
            next_sample: cfg.sample_period,
        }
    }

    /// The promotion threshold currently in force.
    pub fn effective_threshold(&self, m: &Machine) -> u32 {
        if self.cfg.adaptive && m.fmfi() < self.cfg.fmfi_threshold {
            1
        } else {
            self.cfg.util_threshold
        }
    }

    /// Ingens' proportional promotion metric: huge-page share (idle pages
    /// penalized) over footprint. Lower = more deserving.
    fn promotion_metric(&self, m: &Machine, pid: u32) -> f64 {
        let Some(p) = m.process(pid) else { return f64::INFINITY };
        let rss = p.space().rss_pages().max(1) as f64;
        let huge = p.space().huge_pages() as f64;
        let idle = self.idle_huge.get(&pid).copied().unwrap_or(0) as f64;
        (huge + self.cfg.idle_penalty * idle) * 512.0 / rss
    }

    fn region_eligible(m: &Machine, pid: u32, hvpn: Hvpn, threshold: u32) -> bool {
        m.process(pid)
            .map(|p| {
                let pt = p.space().page_table();
                pt.huge_entry(hvpn).is_none()
                    && p.space().region_promotable(hvpn)
                    && pt.region_mapped_count(hvpn) >= threshold
            })
            .unwrap_or(false)
    }

    /// Picks the next region to promote for `pid`: recently-faulted
    /// regions first, then the sequential VA scan.
    fn next_candidate(&mut self, m: &Machine, pid: u32, threshold: u32) -> Option<Hvpn> {
        let mut i = self.recent.len();
        while i > 0 {
            i -= 1;
            let (rp, h) = self.recent[i];
            if rp == pid && Self::region_eligible(m, pid, h, threshold) {
                self.recent.remove(i);
                return Some(h);
            }
        }
        let cursor = self.cursors.get(&pid).copied().unwrap_or(0);
        let p = m.process(pid)?;
        let pt = p.space().page_table();
        let found = pt
            .mapped_regions()
            .filter(|h| h.0 >= cursor)
            .find(|h| Self::region_eligible(m, pid, *h, threshold))
            .or_else(|| {
                // Wrap the sequential scan.
                pt.mapped_regions()
                    .filter(|h| h.0 < cursor)
                    .find(|h| Self::region_eligible(m, pid, *h, threshold))
            });
        if let Some(h) = found {
            self.cursors.insert(pid, h.0 + 1);
        }
        found
    }

    fn sample_idleness(&mut self, m: &mut Machine) {
        let pids = m.running_pids();
        for pid in pids {
            let Some(p) = m.process_mut(pid) else { continue };
            let regions: Vec<Hvpn> =
                p.space().page_table().huge_mappings().map(|(h, _)| h).collect();
            let mut idle = 0;
            for h in regions {
                let s = p.space_mut().sample_and_clear_access(h);
                if s.accessed == 0 {
                    idle += 1;
                }
            }
            self.idle_huge.insert(pid, idle);
        }
    }

    fn try_promote(&mut self, m: &mut Machine, pid: u32, hvpn: Hvpn) -> bool {
        match m.promote(pid, hvpn) {
            Ok(_) => true,
            Err(PromoteError::NoContiguousMemory) => {
                m.run_compaction(self.cfg.compact_budget);
                m.promote(pid, hvpn).is_ok()
            }
            Err(_) => false,
        }
    }
}

impl Default for Ingens {
    fn default() -> Self {
        Self::new(IngensConfig::default())
    }
}

impl HugePagePolicy for Ingens {
    fn name(&self) -> &str {
        &self.name
    }

    fn on_fault(&mut self, _m: &mut Machine, pid: u32, vpn: Vpn) -> FaultAction {
        let key = (pid, vpn.hvpn());
        if self.recent.back() != Some(&key) {
            self.recent.push_back(key);
            if self.recent.len() > RECENT_CAP {
                self.recent.pop_front();
            }
        }
        FaultAction::MapBase
    }

    fn on_tick(&mut self, m: &mut Machine) {
        let now = m.now();
        if now >= self.next_sample {
            self.sample_idleness(m);
            self.next_sample = now + self.cfg.sample_period;
        }
        self.budget.refill(now);
        while self.budget.take(1.0) {
            let threshold = self.effective_threshold(m);
            // Fair share: promote for the process with the lowest metric
            // that has an eligible region.
            let mut pids = m.running_pids();
            pids.sort_by(|a, b| {
                self.promotion_metric(m, *a)
                    .partial_cmp(&self.promotion_metric(m, *b))
                    .expect("metrics are finite")
            });
            let mut promoted = false;
            for pid in pids {
                if let Some(h) = self.next_candidate(m, pid, threshold) {
                    if self.try_promote(m, pid, h) {
                        promoted = true;
                        break;
                    }
                }
            }
            if !promoted {
                break;
            }
        }
    }

    fn on_exit(&mut self, _m: &mut Machine, pid: u32) {
        self.cursors.remove(&pid);
        self.idle_huge.remove(&pid);
        self.recent.retain(|(p, _)| *p != pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{workload::script, KernelConfig, MemOp, Simulator};
    use hawkeye_vm::VmaKind;

    fn touch_then_idle(pages: u64) -> Vec<MemOp> {
        vec![
            MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
            MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 0, stride: 1 , repeats: 1},
            MemOp::Compute { cycles: 10_000_000_000 },
        ]
    }

    #[test]
    fn faults_always_map_base_pages() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(Ingens::default()));
        let pid = sim.spawn(script("w", touch_then_idle(1024)));
        sim.run_for(Cycles::from_millis(20));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().faults, 1024);
        assert_eq!(p.stats().huge_faults, 0);
    }

    #[test]
    fn async_promotion_follows_when_unfragmented() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(Ingens::default()));
        let pid = sim.spawn(script("w", touch_then_idle(2048)));
        sim.run_for(Cycles::from_secs(1.0));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 4, "aggressive mode promotes fully-used regions");
    }

    #[test]
    fn conservative_mode_skips_underutilized_regions() {
        let mut cfg = KernelConfig::small();
        cfg.cross_merge = true;
        let mut sim = Simulator::new(cfg, Box::new(Ingens::new(IngensConfig::fixed_90())));
        // Two regions: one 95% utilized, one 50%.
        let pid = sim.spawn(script(
            "mixed",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 1024, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 487, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::TouchRange { start: Vpn(512), pages: 256, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Compute { cycles: 10_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_secs(1.0));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 1, "only the 95% region crosses 90%");
        assert!(p.space().page_table().huge_entry(Hvpn(0)).is_some());
    }

    #[test]
    fn adaptive_threshold_reacts_to_fmfi() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(Ingens::default()));
        let ing = Ingens::default();
        assert_eq!(ing.effective_threshold(sim.machine()), 1, "pristine memory: aggressive");
        sim.machine_mut().fragment(0.9, 0.5, 11);
        assert!(sim.machine().fmfi() > 0.5);
        assert_eq!(ing.effective_threshold(sim.machine()), 461, "fragmented: conservative");
    }

    #[test]
    fn fairness_shares_promotions_across_processes() {
        let mut cfg = KernelConfig::small();
        // Slow promotions so we can observe interleaving.
        let ing = Ingens::new(IngensConfig { promotions_per_sec: 20.0, ..Default::default() });
        cfg.cross_merge = true;
        let mut sim = Simulator::new(cfg, Box::new(ing));
        let mk = || touch_then_idle(8 * 512);
        let a = sim.spawn(script("a", mk()));
        let b = sim.spawn(script("b", mk()));
        // Run until ~half the total promotions have happened.
        sim.run_while(|m| m.stats().promotions < 8);
        let ha = sim.machine().process(a).unwrap().space().huge_pages() as i64;
        let hb = sim.machine().process(b).unwrap().space().huge_pages() as i64;
        assert!((ha - hb).abs() <= 2, "proportional promotion: a={ha} b={hb}");
    }

    #[test]
    fn recently_faulted_regions_have_priority() {
        let mut cfg = KernelConfig::small();
        cfg.cross_merge = true;
        let ing = Ingens::new(IngensConfig { promotions_per_sec: 5.0, ..Default::default() });
        let mut sim = Simulator::new(cfg, Box::new(ing));
        // Touch low VA region, then a high VA region last.
        let pid = sim.spawn(script(
            "w",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 16 * 512, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 512, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::TouchRange { start: Vpn(15 * 512), pages: 512, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Compute { cycles: 10_000_000_000 },
            ],
        ));
        sim.run_while(|m| m.stats().promotions < 1);
        let p = sim.machine().process(pid).unwrap();
        // The most recently faulted region (high VA) went first.
        assert!(p.space().page_table().huge_entry(Hvpn(15)).is_some());
        assert!(p.space().page_table().huge_entry(Hvpn(0)).is_none());
    }
}
