//! FreeBSD-style reservation-based superpage management (Navarro et al.),
//! as summarized in the paper's §1.
//!
//! On the first fault in a huge-eligible region, a contiguous 2 MB block
//! is *reserved* but only the faulting base page is mapped (and zeroed).
//! Subsequent faults in the region fill in base pages from the
//! reservation. Only when **all 512** pages are populated is the region
//! promoted — by rewriting PTEs in place, since the frames are already
//! contiguous. Under memory pressure, partially-filled reservations are
//! broken and their unused frames returned to the allocator.
//!
//! This is memory-conservative (no bloat) but pays more page faults and
//! delays huge mappings — the trade-off Table 1 and §2.1 explore.

use hawkeye_kernel::{FaultAction, HugePagePolicy, Machine};
use hawkeye_mem::{AllocPref, FrameKind, Order, OwnerTag, Pfn, HUGE_ORDER};
use hawkeye_vm::{Hvpn, Vpn};
use std::collections::BTreeMap;

/// Tunables of the FreeBSD policy.
#[derive(Debug, Clone, Copy)]
pub struct FreeBsdConfig {
    /// Utilization above which partially-filled reservations are broken.
    pub pressure_watermark: f64,
    /// Reservations broken per tick under pressure.
    pub breaks_per_tick: usize,
}

impl Default for FreeBsdConfig {
    fn default() -> Self {
        FreeBsdConfig { pressure_watermark: 0.90, breaks_per_tick: 16 }
    }
}

#[derive(Debug, Clone)]
struct Reservation {
    pfn: Pfn,
    populated: Box<[bool; 512]>,
    count: u32,
}

/// The FreeBSD reservation policy.
///
/// # Examples
///
/// ```
/// use hawkeye_policies::FreeBsd;
/// use hawkeye_kernel::HugePagePolicy;
///
/// assert_eq!(FreeBsd::default().name(), "FreeBSD");
/// ```
#[derive(Debug, Default)]
pub struct FreeBsd {
    cfg: FreeBsdConfig,
    reservations: BTreeMap<(u32, Hvpn), Reservation>,
}

impl FreeBsd {
    /// Creates the policy with explicit tunables.
    pub fn new(cfg: FreeBsdConfig) -> Self {
        FreeBsd { cfg, reservations: BTreeMap::new() }
    }

    /// Number of live (un-promoted, un-broken) reservations.
    pub fn reservations(&self) -> usize {
        self.reservations.len()
    }

    /// Returns unused frames of a reservation to the allocator.
    fn break_reservation(m: &mut Machine, r: &Reservation) {
        for (i, populated) in r.populated.iter().enumerate() {
            if !populated {
                m.pm_mut().free(Pfn(r.pfn.0 + i as u64), Order(0));
            }
        }
    }
}

impl HugePagePolicy for FreeBsd {
    fn name(&self) -> &str {
        "FreeBSD"
    }

    fn on_fault(&mut self, m: &mut Machine, pid: u32, vpn: Vpn) -> FaultAction {
        let hvpn = vpn.hvpn();
        let off = vpn.huge_offset() as usize;
        if let Some(r) = self.reservations.get_mut(&(pid, hvpn)) {
            debug_assert!(!r.populated[off], "fault on populated page");
            r.populated[off] = true;
            r.count += 1;
            let pfn = Pfn(r.pfn.0 + off as u64);
            return FaultAction::MapBaseAt(pfn);
        }
        // New region: try to reserve a contiguous block.
        let promotable = m
            .process(pid)
            .map(|p| {
                p.space().region_promotable(hvpn)
                    && p.space().page_table().region_mapped_count(hvpn) == 0
            })
            .unwrap_or(false);
        if !promotable {
            return FaultAction::MapBase;
        }
        let Ok(a) = m.pm_mut().alloc(HUGE_ORDER, AllocPref::Zeroed) else {
            return FaultAction::MapBase;
        };
        // Tag the reserved frames so compaction leaves them alone.
        for i in 0..512u64 {
            let f = m.pm_mut().frame_mut(Pfn(a.pfn.0 + i));
            f.set_kind(FrameKind::Anon);
            f.set_owner(Some(OwnerTag { pid, vpn: hvpn.vpn_at(i).0 }));
            f.set_movable(false);
        }
        let mut populated = Box::new([false; 512]);
        populated[off] = true;
        self.reservations
            .insert((pid, hvpn), Reservation { pfn: a.pfn, populated, count: 1 });
        FaultAction::MapBaseAt(Pfn(a.pfn.0 + off as u64))
    }

    fn on_tick(&mut self, m: &mut Machine) {
        // Promote fully-populated reservations in place.
        let full: Vec<(u32, Hvpn)> = self
            .reservations
            .iter()
            .filter(|(_, r)| r.count == 512)
            .map(|(k, _)| *k)
            .collect();
        for (pid, hvpn) in full {
            if m.promote_in_place(pid, hvpn).is_ok() {
                self.reservations.remove(&(pid, hvpn));
            }
        }
        // Under pressure, break the least-populated reservations.
        if m.utilization() > self.cfg.pressure_watermark {
            let mut partial: Vec<((u32, Hvpn), u32)> = self
                .reservations
                .iter()
                .map(|(k, r)| (*k, r.count))
                .collect();
            partial.sort_by_key(|(_, count)| *count);
            for ((pid, hvpn), _) in partial.into_iter().take(self.cfg.breaks_per_tick) {
                let r = self.reservations.remove(&(pid, hvpn)).expect("key just listed");
                Self::break_reservation(m, &r);
                // Populated pages stay mapped as ordinary base pages,
                // individually movable from now on.
                for (i, populated) in r.populated.iter().enumerate() {
                    if *populated {
                        m.pm_mut().frame_mut(Pfn(r.pfn.0 + i as u64)).set_movable(true);
                    }
                }
            }
        }
    }

    fn on_release(&mut self, m: &mut Machine, pid: u32, start: Vpn, pages: u64) {
        if pages == 0 {
            return;
        }
        let first = start.hvpn().0;
        let last = Vpn(start.0 + pages - 1).hvpn().0;
        let keys: Vec<(u32, Hvpn)> = self
            .reservations
            .range((pid, Hvpn(first))..=(pid, Hvpn(last)))
            .map(|(k, _)| *k)
            .collect();
        for key in keys {
            let r = self.reservations.remove(&key).expect("key just listed");
            let hvpn = key.1;
            for i in 0..512u64 {
                let vpn = hvpn.vpn_at(i);
                let covered = vpn >= start && vpn.0 < start.0 + pages;
                if r.populated[i as usize] {
                    // Covered populated pages were unmapped and freed by
                    // the kernel; surviving ones become plain movable base
                    // pages.
                    if !covered {
                        m.pm_mut().frame_mut(Pfn(r.pfn.0 + i)).set_movable(true);
                    }
                } else {
                    // Never populated: still reservation-held — return it.
                    m.pm_mut().free(Pfn(r.pfn.0 + i), Order(0));
                }
            }
        }
    }

    fn on_exit(&mut self, m: &mut Machine, pid: u32) {
        let keys: Vec<(u32, Hvpn)> = self
            .reservations
            .keys()
            .filter(|(p, _)| *p == pid)
            .copied()
            .collect();
        for key in keys {
            let r = self.reservations.remove(&key).expect("key just listed");
            // Populated frames were freed by process teardown; return the
            // never-populated remainder.
            Self::break_reservation(m, &r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{workload::script, KernelConfig, MemOp, Simulator};
    use hawkeye_metrics::Cycles;
    use hawkeye_vm::VmaKind;

    #[test]
    fn partial_population_stays_base_mapped() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(FreeBsd::default()));
        let pid = sim.spawn(script(
            "partial",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 256, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Compute { cycles: 3_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_secs(1.0));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 0, "no promotion before full population");
        assert_eq!(p.space().rss_pages(), 256, "no bloat");
        // But the whole block is reserved (physically allocated).
        assert_eq!(sim.machine().pm().allocated_pages(), 513);
    }

    #[test]
    fn full_population_promotes_in_place() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(FreeBsd::default()));
        let pid = sim.spawn(script(
            "full",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 1024, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 1024, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Compute { cycles: 3_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_secs(1.0));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 2, "both regions promoted");
        assert_eq!(p.stats().faults, 1024, "one fault per base page, unlike THP");
        assert_eq!(sim.machine().stats().promote_copied_pages, 0, "in-place: no copies");
    }

    #[test]
    fn reservations_break_under_pressure() {
        let mut cfg = KernelConfig::small();
        cfg.frames = 2048; // 8 MiB machine: 4 huge regions
        let mut sim = Simulator::new(cfg, Box::new(FreeBsd::default()));
        // Sparse toucher: 1 page per region over 3 regions reserves 3*512
        // frames; a second allocation wave then forces pressure.
        let pid = sim.spawn(script(
            "sparse",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 3 * 512, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(0), write: true, repeats: 1, think: 0 },
                MemOp::Touch { vpn: Vpn(512), write: true, repeats: 1, think: 0 },
                MemOp::Touch { vpn: Vpn(1024), write: true, repeats: 1, think: 0 },
                MemOp::Compute { cycles: 3_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_millis(50));
        assert_eq!(sim.machine().pm().allocated_pages(), 3 * 512 + 1);
        // Pressure: utilization (75%) below watermark, so nothing breaks
        // yet; lower the watermark via a new policy to force it.
        let _ = pid;
        let mut sim2 = Simulator::new(
            KernelConfig { frames: 2048, ..KernelConfig::small() },
            Box::new(FreeBsd::new(FreeBsdConfig { pressure_watermark: 0.5, breaks_per_tick: 16 })),
        );
        let pid2 = sim2.spawn(script(
            "sparse",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 3 * 512, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(0), write: true, repeats: 1, think: 0 },
                MemOp::Touch { vpn: Vpn(512), write: true, repeats: 1, think: 0 },
                MemOp::Touch { vpn: Vpn(1024), write: true, repeats: 1, think: 0 },
                MemOp::Compute { cycles: 3_000_000_000 },
            ],
        ));
        sim2.run_for(Cycles::from_millis(100));
        // Reservations broken: only the 3 mapped pages remain (plus zero page).
        assert_eq!(sim2.machine().pm().allocated_pages(), 4);
        assert_eq!(sim2.machine().process(pid2).unwrap().space().rss_pages(), 3);
        sim2.machine().pm().check_invariants();
    }

    #[test]
    fn madvise_returns_reserved_frames() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(FreeBsd::default()));
        let pid = sim.spawn(script(
            "release",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
                MemOp::TouchRange { start: Vpn(0), pages: 100, write: true, think: 0, stride: 1 , repeats: 1},
                MemOp::Madvise { start: Vpn(0), pages: 50 },
                MemOp::Compute { cycles: 1_000_000_000 },
            ],
        ));
        sim.run_for(Cycles::from_millis(100));
        let p = sim.machine().process(pid).unwrap();
        // 50 pages mapped; reservation fully broken: 50 frames + zero page.
        assert_eq!(p.space().rss_pages(), 50);
        assert_eq!(sim.machine().pm().allocated_pages(), 51);
        sim.machine().pm().check_invariants();
    }

    #[test]
    fn exit_returns_reservation_remainder() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(FreeBsd::default()));
        let _pid = sim.spawn(script(
            "exit",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(5), write: true, repeats: 1, think: 0 },
            ],
        ));
        sim.run();
        assert_eq!(sim.machine().pm().allocated_pages(), 1, "only the zero page survives");
        sim.machine().pm().check_invariants();
    }
}
