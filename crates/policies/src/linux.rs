//! Linux transparent huge pages (THP), as described in the paper's §1.
//!
//! Two mechanisms:
//!
//! 1. **Synchronous fault-time allocation**: if the faulting region is
//!    huge-eligible and a contiguous block exists, map a huge page
//!    immediately — zeroing it synchronously (the 465 µs faults of
//!    Table 1).
//! 2. **`khugepaged`**: a background thread that picks processes in
//!    **first-come-first-serve order** and, within a process, promotes
//!    regions by a **sequential scan from lower to higher virtual
//!    addresses**, compacting memory when no contiguous block is free.
//!    Linux promotes a region when *any* of its pages are mapped
//!    (`max_ptes_none` defaults to permissive), which is exactly the
//!    memory-bloat hazard of §2.1.

use crate::util::TokenBucket;
use hawkeye_kernel::{FaultAction, HugePagePolicy, Machine, PromoteError};
use hawkeye_vm::{Hvpn, Vpn};

/// Tunables of the Linux policy.
#[derive(Debug, Clone, Copy)]
pub struct LinuxConfig {
    /// khugepaged promotions per simulated second.
    pub promotions_per_sec: f64,
    /// Minimum mapped base pages for khugepaged to collapse a region
    /// (Linux default is permissive: 1).
    pub min_mapped: u32,
    /// Compaction migration budget per attempt.
    pub compact_budget: u64,
    /// Whether fault-time huge allocation is attempted (THP=always).
    pub huge_faults: bool,
}

impl Default for LinuxConfig {
    fn default() -> Self {
        LinuxConfig {
            promotions_per_sec: 40.0,
            min_mapped: 1,
            compact_budget: 4096,
            huge_faults: true,
        }
    }
}

/// The Linux THP policy ("Linux-2MB" in the paper's tables).
///
/// # Examples
///
/// ```
/// use hawkeye_policies::LinuxThp;
/// use hawkeye_kernel::HugePagePolicy;
///
/// assert_eq!(LinuxThp::default().name(), "Linux-2MB");
/// ```
#[derive(Debug)]
pub struct LinuxThp {
    cfg: LinuxConfig,
    budget: TokenBucket,
    /// FCFS scan state: index into the pid list and the VA scan cursor.
    current: Option<(u32, u64)>,
}

impl LinuxThp {
    /// Creates the policy with explicit tunables.
    pub fn new(cfg: LinuxConfig) -> Self {
        LinuxThp { budget: TokenBucket::new(cfg.promotions_per_sec), cfg, current: None }
    }

    /// Next process after `pid` in FCFS (pid) order, wrapping around.
    fn next_process(m: &Machine, after: Option<u32>) -> Option<u32> {
        let running = m.running_pids();
        if running.is_empty() {
            return None;
        }
        match after {
            None => running.first().copied(),
            Some(p) => running
                .iter()
                .copied()
                .find(|x| *x > p)
                .or_else(|| running.first().copied()),
        }
    }

    /// Finds the next collapsible region of `pid` at or after the cursor
    /// (sequential low-to-high VA scan).
    fn next_candidate(&self, m: &Machine, pid: u32, cursor: u64) -> Option<Hvpn> {
        let p = m.process(pid)?;
        let pt = p.space().page_table();
        p.space()
            .page_table()
            .mapped_regions()
            .filter(|h| h.0 >= cursor)
            .find(|h| {
                pt.huge_entry(*h).is_none()
                    && p.space().region_promotable(*h)
                    && pt.region_mapped_count(*h) >= self.cfg.min_mapped
            })
    }

    fn try_promote(&mut self, m: &mut Machine, pid: u32, hvpn: Hvpn) -> bool {
        match m.promote(pid, hvpn) {
            Ok(_) => true,
            Err(PromoteError::NoContiguousMemory) => {
                m.run_compaction(self.cfg.compact_budget);
                m.promote(pid, hvpn).is_ok()
            }
            Err(_) => false,
        }
    }
}

impl Default for LinuxThp {
    fn default() -> Self {
        Self::new(LinuxConfig::default())
    }
}

impl HugePagePolicy for LinuxThp {
    fn name(&self) -> &str {
        "Linux-2MB"
    }

    fn on_fault(&mut self, _m: &mut Machine, _pid: u32, _vpn: Vpn) -> FaultAction {
        if self.cfg.huge_faults {
            FaultAction::MapHuge
        } else {
            FaultAction::MapBase
        }
    }

    fn on_tick(&mut self, m: &mut Machine) {
        self.budget.refill(m.now());
        while self.budget.take(1.0) {
            // Resume the FCFS scan: finish the current process before
            // moving to the next.
            let mut promoted = false;
            let mut hops = 0;
            while !promoted {
                let (pid, cursor) = match self.current {
                    Some(s) if m.process(s.0).map(|p| !p.is_finished()).unwrap_or(false) => s,
                    _ => match Self::next_process(m, self.current.map(|s| s.0)) {
                        Some(pid) => (pid, 0),
                        None => return,
                    },
                };
                self.current = Some((pid, cursor));
                match self.next_candidate(m, pid, cursor) {
                    Some(h) => {
                        if self.try_promote(m, pid, h) {
                            self.current = Some((pid, h.0 + 1));
                            promoted = true;
                        } else {
                            // Skip this region (uncollapsible for now).
                            self.current = Some((pid, h.0 + 1));
                        }
                    }
                    None => {
                        // Done with this process; FCFS-advance.
                        let next = Self::next_process(m, Some(pid));
                        self.current = next.map(|n| (n, 0));
                        hops += 1;
                        if hops > m.pids().len() + 1 {
                            return; // nothing promotable anywhere
                        }
                    }
                }
            }
        }
    }

    fn on_exit(&mut self, _m: &mut Machine, pid: u32) {
        if let Some((cur, _)) = self.current {
            if cur == pid {
                self.current = None;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hawkeye_kernel::{workload::script, KernelConfig, MemOp, Simulator};
    use hawkeye_vm::VmaKind;

    fn touch(pages: u64) -> Vec<MemOp> {
        vec![
            MemOp::Mmap { start: Vpn(0), pages, kind: VmaKind::Anon },
            MemOp::TouchRange { start: Vpn(0), pages, write: true, think: 50, stride: 1 , repeats: 1},
            // Keep the process alive so khugepaged can work on it.
            MemOp::Compute { cycles: 20_000_000_000 },
        ]
    }

    #[test]
    fn fault_time_huge_allocation_on_pristine_memory() {
        let mut sim = Simulator::new(KernelConfig::small(), Box::new(LinuxThp::default()));
        let pid = sim.spawn(script("w", touch(2048)));
        sim.run_for(hawkeye_metrics::Cycles::from_millis(100));
        let p = sim.machine().process(pid).unwrap();
        assert_eq!(p.stats().huge_faults, 4);
        assert_eq!(p.space().huge_pages(), 4);
    }

    #[test]
    fn khugepaged_promotes_after_fragmentation_clears() {
        let mut cfg = KernelConfig::small();
        cfg.cross_merge = true;
        let mut sim = Simulator::new(cfg, Box::new(LinuxThp::default()));
        // Fragment so fault-time huge allocation fails (fill everything,
        // then free a scattered 45%).
        sim.machine_mut().fragment(1.0, 0.45, 1);
        let pid = sim.spawn(script("w", touch(1024)));
        sim.run_for(hawkeye_metrics::Cycles::from_secs(2.0));
        let p = sim.machine().process(pid).unwrap();
        assert!(p.stats().huge_faults < 2, "fragmented: fault-time huge mostly fails");
        // ...but khugepaged (with compaction) eventually promotes.
        assert!(
            sim.machine().process(pid).unwrap().space().huge_pages() >= 1,
            "khugepaged should promote; stats: {:?}",
            sim.machine().stats()
        );
    }

    #[test]
    fn promotes_sparse_regions_causing_bloat() {
        // One page mapped in a region is enough for khugepaged (min_mapped
        // = 1): promotion inflates RSS by 511 pages — §2.1's bloat.
        // Disable fault-time huge so only khugepaged acts.
        let mut pol = LinuxThp::new(LinuxConfig { huge_faults: false, ..Default::default() });
        let _ = &mut pol;
        let mut sim2 = Simulator::new(KernelConfig::small(), Box::new(pol));
        let pid = sim2.spawn(script(
            "sparse",
            vec![
                MemOp::Mmap { start: Vpn(0), pages: 512, kind: VmaKind::Anon },
                MemOp::Touch { vpn: Vpn(7), write: true, repeats: 1, think: 0 },
                MemOp::Compute { cycles: 5_000_000_000 },
            ],
        ));
        sim2.run_for(hawkeye_metrics::Cycles::from_secs(1.0));
        let p = sim2.machine().process(pid).unwrap();
        assert_eq!(p.space().huge_pages(), 1, "sparse region was promoted");
        assert_eq!(p.space().rss_pages(), 512, "bloat: 1 useful page, 512 resident");
    }

    #[test]
    fn fcfs_finishes_first_process_before_second() {
        let mut cfg = KernelConfig::small();
        cfg.cross_merge = true;
        let lin = LinuxThp::new(LinuxConfig {
            huge_faults: false,
            promotions_per_sec: 10.0,
            ..Default::default()
        });
        let mut sim = Simulator::new(cfg, Box::new(lin));
        let mk = |n: u64| {
            script(
                format!("w{n}"),
                vec![
                    MemOp::Mmap { start: Vpn(0), pages: 8 * 512, kind: VmaKind::Anon },
                    MemOp::TouchRange { start: Vpn(0), pages: 8 * 512, write: true, think: 0, stride: 1 , repeats: 1},
                    MemOp::Compute { cycles: 50_000_000_000 },
                ],
            )
        };
        let a = sim.spawn(mk(1));
        let b = sim.spawn(mk(2));
        // Run until process A is fully promoted.
        sim.run_while(|m| m.process(1).map(|p| p.space().huge_pages() < 8).unwrap_or(false));
        let ha = sim.machine().process(a).unwrap().space().huge_pages();
        let hb = sim.machine().process(b).unwrap().space().huge_pages();
        assert_eq!(ha, 8);
        assert!(hb <= 1, "FCFS: B should barely have started (got {hb})");
    }
}
