//! Shared policy plumbing: rate limiting.

use hawkeye_metrics::Cycles;

/// A token bucket keyed to simulated time, used to rate-limit daemon work
/// (promotions per second, zeroed pages per second, scanned regions per
/// second).
///
/// # Examples
///
/// ```
/// use hawkeye_policies::TokenBucket;
/// use hawkeye_metrics::Cycles;
///
/// let mut b = TokenBucket::new(10.0); // 10 tokens per simulated second
/// b.refill(Cycles::from_secs(1.0));
/// assert!(b.take(10.0));
/// assert!(!b.take(1.0));
/// ```
#[derive(Debug, Clone)]
pub struct TokenBucket {
    rate_per_sec: f64,
    tokens: f64,
    cap: f64,
    last: Cycles,
}

impl TokenBucket {
    /// Creates a bucket refilling at `rate_per_sec`, with a burst capacity
    /// of one second's worth of tokens.
    pub fn new(rate_per_sec: f64) -> Self {
        TokenBucket { rate_per_sec, tokens: 0.0, cap: rate_per_sec.max(1.0), last: Cycles::ZERO }
    }

    /// Sets the burst capacity.
    pub fn with_cap(mut self, cap: f64) -> Self {
        self.cap = cap;
        self
    }

    /// Advances the bucket to simulated time `now`, accruing tokens.
    pub fn refill(&mut self, now: Cycles) {
        let dt = now.saturating_sub(self.last).as_secs();
        self.last = self.last.max(now);
        self.tokens = (self.tokens + dt * self.rate_per_sec).min(self.cap);
    }

    /// Takes `n` tokens if available.
    pub fn take(&mut self, n: f64) -> bool {
        if self.tokens >= n {
            self.tokens -= n;
            true
        } else {
            false
        }
    }

    /// Tokens currently available.
    pub fn available(&self) -> f64 {
        self.tokens
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accrues_with_time_and_caps() {
        let mut b = TokenBucket::new(100.0);
        b.refill(Cycles::from_millis(100));
        assert!((b.available() - 10.0).abs() < 1e-6);
        b.refill(Cycles::from_secs(100.0));
        assert!((b.available() - 100.0).abs() < 1e-6, "capped at 1s worth");
    }

    #[test]
    fn take_debits() {
        let mut b = TokenBucket::new(10.0);
        b.refill(Cycles::from_secs(0.5));
        assert!(b.take(5.0));
        assert!(!b.take(0.1));
    }

    #[test]
    fn refill_is_monotone() {
        let mut b = TokenBucket::new(10.0);
        b.refill(Cycles::from_secs(1.0));
        let t = b.available();
        b.refill(Cycles::from_secs(0.5)); // going "backwards" adds nothing
        assert_eq!(b.available(), t);
    }

    #[test]
    fn custom_cap() {
        let mut b = TokenBucket::new(10.0).with_cap(3.0);
        b.refill(Cycles::from_secs(10.0));
        assert_eq!(b.available(), 3.0);
    }
}
