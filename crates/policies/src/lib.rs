//! Baseline huge-page policies: Linux THP, FreeBSD reservations, Ingens.
//!
//! These are the systems HawkEye is evaluated against. Each is implemented
//! against the [`hawkeye_kernel::HugePagePolicy`] interface with the
//! behaviours the paper's §1–§2 describe:
//!
//! * [`LinuxThp`] — synchronous huge allocation at fault time; background
//!   `khugepaged` promotion in **FCFS process order** with a
//!   **sequential low-to-high VA scan** within each process; compaction
//!   when contiguity runs out.
//! * [`FreeBsd`] — physical *reservations* at first fault; promotion only
//!   once all 512 base pages of a region are populated; reservations are
//!   broken under memory pressure.
//! * [`Ingens`] — base pages at fault time, asynchronous utilization-
//!   threshold promotion (90 % when fragmented, aggressive when not —
//!   switched by FMFI at 0.5), share-based fairness with an idleness
//!   penalty, and prioritization of recently-faulted regions.
//!
//! # Examples
//!
//! ```
//! use hawkeye_kernel::{KernelConfig, Simulator};
//! use hawkeye_policies::LinuxThp;
//!
//! let sim = Simulator::new(KernelConfig::small(), Box::new(LinuxThp::default()));
//! assert_eq!(sim.policy_name(), "Linux-2MB");
//! ```

pub mod freebsd;
pub mod ingens;
pub mod linux;
pub mod util;

pub use freebsd::{FreeBsd, FreeBsdConfig};
pub use ingens::{Ingens, IngensConfig};
pub use linux::{LinuxConfig, LinuxThp};
pub use util::TokenBucket;
