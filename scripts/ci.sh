#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, and a hot-path throughput
# smoke. Everything runs offline against the committed lockfile.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Touch-throughput smoke: --quick scales the run down to 1 M touches per
# shape and asserts each finishes inside a 30 s budget, so a fast-path
# regression (e.g. the streak batcher silently falling back to the
# per-access loop) fails CI instead of just slowing the benches.
echo "==> touch-throughput smoke (--quick)"
cargo bench -p hawkeye-bench --bench touch_throughput -- --quick

echo "==> OK"
