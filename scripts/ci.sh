#!/usr/bin/env bash
# Full local CI gate: build, tests, lints, and a hot-path throughput
# smoke. Everything runs offline against the committed lockfile.
#
# HAWKEYE_BENCH_THREADS caps the scenario-engine worker count for the
# bench steps below (default: all cores). Output is byte-identical at
# any setting — only the wall-clock changes.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
cargo build --release --workspace

echo "==> cargo test --workspace"
cargo test --workspace -q

# The scenario engine's core guarantee, run explicitly (it is also part
# of the workspace tests): stdout + JSON identical on 1 vs 8 vs 32
# workers.
echo "==> scenario-engine determinism test"
cargo test -p hawkeye-bench --test determinism -q

# Fleet determinism gate: a 256-host fleet's JSON summary, trace
# journals, and FLEET.md byte-identical at 1 vs 8 workers and across
# repeated runs (release: three full fleet runs).
echo "==> fleet determinism gate (256 hosts, 1 vs 8 workers)"
cargo test --release -p hawkeye-bench --test fleet_determinism -q

# Telemetry determinism gate (DESIGN.md §16): with obs off every
# artifact is bit-identical to the pre-telemetry pipeline (zero drift);
# with obs on the obs document and the ALERTS.md rendered from it are
# byte-identical at 1 vs 8 workers and across repeated runs.
echo "==> obs determinism gate (zero drift + ALERTS.md, 1 vs 8 workers)"
cargo test --release -p hawkeye-bench --test obs_determinism -q

# Workload-family determinism gate (DESIGN.md §17): the oltp_btree,
# hpc_stencil, and adversarial summaries, traces, and the generated
# ENVELOPES.md atlas are byte-identical at 1 vs 8 workers and across
# repeated runs (reduced-scale sweep).
echo "==> workload-family determinism gate (1 vs 8 workers + ENVELOPES.md)"
cargo test --release -p hawkeye-bench --test workload_families_determinism -q

# Report-loader error paths: corrupt/truncated wallclock sidecars must
# warn and render n/a (never zero-fill), and expected-but-missing
# summary metrics must be listed per target for the exit-4 gate.
echo "==> report-loader error-path tests"
cargo test -p hawkeye-report --lib -q

# Event-skip efficiency gate: on a representative compute/stream
# workload, a minimum fraction of scheduler quanta must be charged in
# closed form (quanta-skipped / quanta-total from sched_stats). The
# simulator is deterministic, so the ratio is an exact counter — this
# gate cannot flake on a slow host, unlike a wall-clock bound. The
# differential tests (diff_fast_path) pin that skipping changes no
# simulated observable; this pins that it actually engages.
echo "==> event-skip efficiency gate (counter-based)"
cargo test --release -p hawkeye-kernel --test skip_efficiency -q

# Serial-vs-multicore differential gate: at cores=1 every observable
# (stats, PMU counters, trace journal, metric registry) is byte-identical
# to the serial engine across all nine policies; at cores∈{2,4,8} the
# aggregate work counters stay pinned exactly while only lock.*/
# contention scopes vary, and repeated multi-core runs are byte-equal.
# Includes the contention smoke: the adversarial scenario must drive the
# CAS-retry counter above zero at 4 cores. All counter-based — the gate
# cannot flake on a slow host.
echo "==> serial-vs-multicore differential gate (counter-based)"
cargo test --release -p hawkeye-kernel --test multicore_diff -q

# Docs-drift gate: the target and check counts stated in README.md and
# EXPERIMENTS.md must agree with the registry (hawkeye-report --counts).
echo "==> docs-drift gate (README/EXPERIMENTS counts vs registry)"
bash scripts/check_docs_drift.sh

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Rustdoc gate: every public item documented (trace/metrics/analyze set
# #![warn(missing_docs)]), every intra-doc link resolving. REPORT.md and
# DESIGN.md lean on the API docs, so broken links are CI failures.
echo "==> RUSTDOCFLAGS=-D warnings cargo doc --no-deps --workspace"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

# Non-test library code in the simulation stack must not unwrap: a
# panic inside the kernel/VM layers would take down a whole bench
# scenario. `--lib` scopes the lint to non-test library code: unit
# tests (#[cfg(test)] modules), integration tests, and benches are
# exempt and may unwrap freely.
echo "==> cargo clippy --lib -- -D clippy::unwrap_used (core crates)"
cargo clippy -p hawkeye-metrics -p hawkeye-mem -p hawkeye-vm -p hawkeye-tlb \
    -p hawkeye-trace -p hawkeye-obs -p hawkeye-kernel -p hawkeye-virt \
    -p hawkeye-fleet -p hawkeye-bench -p hawkeye-analyze -p hawkeye-report \
    --lib -- -D clippy::unwrap_used

# Cycle-attribution gate: run one real traced scenario and pipe the
# journal through hawkeye-analyze --check, which fails on parse errors,
# missing cycle_sample events (attribution silently off), or nonzero
# residue (unhalted cycles the subsystem ledger failed to attribute).
echo "==> cycle-attribution gate (traced table1 -> hawkeye-analyze --check)"
results_dir="${HAWKEYE_BENCH_RESULTS:-${CARGO_TARGET_DIR:-target}/bench-results}"
HAWKEYE_TRACE=1 cargo bench -p hawkeye-bench --bench table1_fault_latency
cargo run --release -q -p hawkeye-analyze -- --check \
    "$results_dir/table1_fault_latency.trace.json"

# Touch-throughput smoke: --quick scales the run down to 1 M touches per
# shape and asserts each finishes inside a 30 s budget, so a fast-path
# regression (e.g. the streak batcher silently falling back to the
# per-access loop) fails CI instead of just slowing the benches.
echo "==> touch-throughput smoke (--quick, HAWKEYE_BENCH_THREADS=${HAWKEYE_BENCH_THREADS:-auto})"
suite_t0=$SECONDS
cargo bench -p hawkeye-bench --bench touch_throughput -- --quick

# Paper-reproduction gate: run the full suite through hawkeye-report and
# fail if any REPORT.md check lands outside its tolerance band (see
# DESIGN.md §12). This regenerates target/report/REPORT.md as a side
# effect, so a green CI run always leaves a fresh report behind.
# The run is seeded with the committed perf-trajectory baseline
# (bench-ledger/BENCH_*.json) so the appended entry lands next in
# sequence, then the --trend gate compares the fresh run against the
# baseline's deterministic work counters (wall-clock is advisory only;
# see DESIGN.md §16).
echo "==> hawkeye-report --check (full suite -> target/report/REPORT.md)"
ledger_dir="${CARGO_TARGET_DIR:-target}/report/ledger"
rm -rf "$ledger_dir"
mkdir -p "$ledger_dir"
cp bench-ledger/BENCH_*.json "$ledger_dir/"
# HAWKEYE_OBS=1: telemetry on, so the run also produces ALERTS.md from
# fleet_slo.obs.json. Zero drift is the standing invariant — REPORT.md
# and every check are bit-identical either way (obs_determinism pins it).
HAWKEYE_OBS=1 cargo run --release -q -p hawkeye-report -- --check

echo "==> hawkeye-report --trend --check (perf-trajectory gate vs committed baseline)"
cargo run --release -q -p hawkeye-report -- --trend --check --no-run

echo "==> suite wall-clock: $((SECONDS - suite_t0))s (bench steps, ${HAWKEYE_BENCH_THREADS:-auto} workers)"
echo "==> OK"
