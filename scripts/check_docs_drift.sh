#!/usr/bin/env bash
# Docs-drift gate: README.md and EXPERIMENTS.md state the suite's target
# count and gated-check count in prose; those numbers rot every time a
# PR adds a target. This script extracts every stated count and fails
# when any of them disagrees with the registry — the single source of
# truth is `hawkeye-report --counts`, which sums the static check
# vectors the `--check` gate runs (targets=N checks=M).
#
# Phrasings the gate recognizes (and requires — deleting the sentences
# does not pass vacuously):
#   "<N> paper-experiment targets"   "all <N> targets" / "all <N> paper targets"
#   "<M> gated metrics"              "<M>/<M> checks"
# Bare table cells like "67/67" (the PR-history ledger) are history,
# not current claims, and are deliberately not matched.
set -euo pipefail
cd "$(dirname "$0")/.."

report_bin="${HAWKEYE_REPORT_BIN:-target/release/hawkeye-report}"
if [[ ! -x "$report_bin" ]]; then
    echo "==> building hawkeye-report for --counts" >&2
    cargo build --release -q -p hawkeye-report
fi
counts=$("$report_bin" --counts)
targets=$(sed -n 's/.*targets=\([0-9]*\).*/\1/p' <<<"$counts")
checks=$(sed -n 's/.*checks=\([0-9]*\).*/\1/p' <<<"$counts")
if [[ -z "$targets" || -z "$checks" ]]; then
    echo "docs-drift: could not parse '$counts' from $report_bin --counts" >&2
    exit 1
fi
echo "==> registry says: $targets targets, $checks checks"

fail=0

# scan FILE PATTERN KIND EXPECTED: every number captured by PATTERN's
# first group must equal EXPECTED; at least one match must exist.
scan() {
    local file=$1 pattern=$2 kind=$3 expected=$4 found=0 n
    while read -r n; do
        [[ -z "$n" ]] && continue
        found=1
        if [[ "$n" != "$expected" ]]; then
            echo "docs-drift: $file states $n $kind, registry says $expected" >&2
            grep -En "$pattern" "$file" | sed 's/^/    /' >&2
            fail=1
        fi
    done < <(grep -Eo "$pattern" "$file" | grep -Eo '[0-9]+' | sort -u)
    if [[ "$found" == 0 ]]; then
        echo "docs-drift: $file never states the $kind (expected pattern: $pattern)" >&2
        fail=1
    fi
}

for f in README.md EXPERIMENTS.md; do
    scan "$f" '(all |the )?[0-9]+ (paper-experiment |paper |suite )?targets' "targets" "$targets"
done
scan README.md '[0-9]+ gated metrics' "gated-metric checks" "$checks"
scan EXPERIMENTS.md '[0-9]+/[0-9]+ checks' "checks" "$checks"

if [[ "$fail" != 0 ]]; then
    echo "docs-drift: FAIL — update the stated counts (or the registry)" >&2
    exit 1
fi
echo "==> docs-drift: OK ($targets targets, $checks checks everywhere)"
